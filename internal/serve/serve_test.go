package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"firmup"
	"firmup/internal/corpus"
	"firmup/internal/serve"
	"firmup/internal/telemetry"
	"firmup/internal/uir"
)

// The sealed corpus is immutable and the corpus build dominates test
// time, so every test shares one.
var (
	scenarioOnce   sync.Once
	scenarioSealed *firmup.SealedCorpus
	scenarioQuery  []byte
	scenarioErr    error
)

func buildScenario(t *testing.T) (*firmup.SealedCorpus, []byte) {
	t.Helper()
	scenarioOnce.Do(func() {
		c, err := corpus.Build(corpus.DefaultScale())
		if err != nil {
			scenarioErr = err
			return
		}
		a := firmup.NewAnalyzer(nil)
		var imgs []*firmup.Image
		for _, bi := range c.Images {
			img, err := a.OpenImage(bi.Image.Pack(true))
			if err != nil {
				scenarioErr = err
				return
			}
			imgs = append(imgs, img)
		}
		scenarioSealed, scenarioErr = a.Seal(imgs...)
		if scenarioErr != nil {
			return
		}
		_, qf, err := corpus.QueryExe("wget", "1.15", uir.ArchMIPS32)
		if err != nil {
			scenarioErr = err
			return
		}
		scenarioQuery = qf.Bytes()
	})
	if scenarioErr != nil {
		t.Fatal(scenarioErr)
	}
	return scenarioSealed, scenarioQuery
}

func newCorpus(name string, sc *firmup.SealedCorpus) *serve.Corpus {
	return &serve.Corpus{Name: name, Sealed: sc, LoadedAt: time.Now()}
}

func postSearch(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, blob
}

func TestServeSearch(t *testing.T) {
	sc, query := buildScenario(t)
	srv := serve.New(newCorpus("test.fwcorp", sc), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, blob := postSearch(t, ts.URL+"/search?proc=ftp_retrieve_glob", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, blob)
	}
	var sr serve.SearchResponse
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.SchemaVersion != serve.SchemaVersion {
		t.Errorf("schema_version = %d, want %d", sr.SchemaVersion, serve.SchemaVersion)
	}
	if sr.Corpus != "test.fwcorp" || sr.Procedure != "ftp_retrieve_glob" {
		t.Errorf("identity fields wrong: %q %q", sr.Corpus, sr.Procedure)
	}
	if len(sr.Images) != len(sc.Images()) {
		t.Errorf("images = %d, want %d", len(sr.Images), len(sc.Images()))
	}
	if sr.TotalFindings == 0 {
		t.Error("no findings for the wget query against the default corpus")
	}
	if sr.QueryStrands == 0 {
		t.Error("query_strands missing")
	}
	// Empty findings must encode as [], never null — the schema
	// consumers index into the array unconditionally.
	if bytes.Contains(blob, []byte(`"findings":null`)) {
		t.Error("an image's findings encoded as null")
	}
}

func TestServeRequestErrors(t *testing.T) {
	sc, query := buildScenario(t)
	srv := serve.New(newCorpus("c", sc), &serve.Config{MaxQueryBytes: int64(len(query) + 1)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/search?proc=x"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search status %d, want 405", resp.StatusCode)
	}
	if resp, _ := postSearch(t, ts.URL+"/search", query); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing proc status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postSearch(t, ts.URL+"/search?proc=x&min_score=zero", query); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min_score status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postSearch(t, ts.URL+"/search?proc=x&min_ratio=2", query); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min_ratio status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postSearch(t, ts.URL+"/search?proc=x", []byte("not an executable")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage query status %d, want 400", resp.StatusCode)
	}
	big := make([]byte, len(query)+2)
	if resp, _ := postSearch(t, ts.URL+"/search?proc=x", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status %d, want 413", resp.StatusCode)
	}

	empty := serve.New(nil, nil)
	tse := httptest.NewServer(empty.Handler())
	defer tse.Close()
	if resp, _ := postSearch(t, tse.URL+"/search?proc=x", query); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("no-corpus status %d, want 503", resp.StatusCode)
	}
}

// TestServeAdmissionControl occupies the single admission slot with a
// request whose body never arrives, then verifies the next request is
// shed immediately with 429 + Retry-After rather than queued.
func TestServeAdmissionControl(t *testing.T) {
	sc, query := buildScenario(t)
	reg := telemetry.New()
	srv := serve.New(newCorpus("c", sc), &serve.Config{MaxInFlight: 1, RetryAfter: 7, Registry: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/search?proc=ftp_retrieve_glob", "application/octet-stream", pr)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("blocked request finished with status %d", resp.StatusCode)
			}
		}
		done <- err
	}()
	// Wait for the first request to be admitted (it then blocks reading
	// its body, holding the slot).
	gauge := reg.Gauge("serve.inflight")
	deadline := time.Now().Add(5 * time.Second)
	for gauge.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _ := postSearch(t, ts.URL+"/search?proc=ftp_retrieve_glob", query)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", got)
	}
	if reg.Counter("serve.rejected").Value() == 0 {
		t.Error("serve.rejected not incremented")
	}

	// Deliver the body; the admitted request must still complete.
	if _, err := pw.Write(query); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestServeHotSwapUnderLoad swaps the corpus while concurrent searches
// are in flight: no request may fail, every response must name one of
// the two corpora, and requests arriving after the swap see the new
// one.
func TestServeHotSwapUnderLoad(t *testing.T) {
	sc, query := buildScenario(t)
	reg := telemetry.New()
	srv := serve.New(newCorpus("A", sc), &serve.Config{MaxInFlight: 64, Registry: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const workers = 4
	const perWorker = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	names := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/search?proc=ftp_retrieve_glob", "application/octet-stream", bytes.NewReader(query))
				if err != nil {
					errs <- err
					return
				}
				blob, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d during swap load: %s", resp.StatusCode, blob)
					return
				}
				var sr serve.SearchResponse
				if err := json.Unmarshal(blob, &sr); err != nil {
					errs <- err
					return
				}
				if sr.TotalFindings == 0 {
					errs <- fmt.Errorf("response from corpus %q lost its findings", sr.Corpus)
					return
				}
				names <- sr.Corpus
			}
		}()
	}
	// Let some requests land on A, then swap mid-load.
	for reg.Counter("serve.requests").Value() < workers {
		time.Sleep(time.Millisecond)
	}
	prev := srv.Swap(newCorpus("B", sc))
	if prev == nil || prev.Name != "A" {
		t.Errorf("Swap returned %+v, want previous corpus A", prev)
	}
	wg.Wait()
	close(errs)
	close(names)
	for err := range errs {
		t.Error(err)
	}
	for name := range names {
		if name != "A" && name != "B" {
			t.Errorf("response names unknown corpus %q", name)
		}
	}
	// After the swap has settled, new requests must see B.
	resp, blob := postSearch(t, ts.URL+"/search?proc=ftp_retrieve_glob", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap status %d", resp.StatusCode)
	}
	var sr serve.SearchResponse
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Corpus != "B" {
		t.Errorf("post-swap response from %q, want B", sr.Corpus)
	}
	if got := srv.Current().Name; got != "B" {
		t.Errorf("Current() = %q, want B", got)
	}
}

func TestServeCorpusAndMetricsEndpoints(t *testing.T) {
	sc, query := buildScenario(t)
	reg := telemetry.New()
	srv := serve.New(newCorpus("c.fwcorp", sc), &serve.Config{Registry: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, blob := postSearch(t, ts.URL+"/search?proc=ftp_retrieve_glob", query); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d: %s", resp.StatusCode, blob)
	}

	resp, err := http.Get(ts.URL + "/corpus")
	if err != nil {
		t.Fatal(err)
	}
	var info serve.CorpusInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "c.fwcorp" || info.Images != len(sc.Images()) ||
		info.Executables != sc.Executables() || info.UniqueStrands != sc.UniqueStrands() {
		t.Errorf("corpus info mismatch: %+v", info)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve.requests"] < 1 {
		t.Errorf("serve.requests = %d, want >= 1", snap.Counters["serve.requests"])
	}
	h, ok := snap.Histograms["serve.latency_us"]
	if !ok {
		t.Fatal("metrics lack serve.latency_us histogram")
	}
	if h.Count < 1 || h.P50 <= 0 {
		t.Errorf("latency histogram vacuous: %+v", h)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

// normalizeResponse strips the fields that legitimately differ between
// a batched and an unbatched run of the same search (latency).
func normalizeResponse(t *testing.T, blob []byte) serve.SearchResponse {
	t.Helper()
	var sr serve.SearchResponse
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatalf("bad search response: %v: %s", err, blob)
	}
	sr.ElapsedMS = 0
	return sr
}

// TestServeBatchCoalescing drives concurrent /search requests at a
// coalescing server: requests that agree on (corpus, image, options)
// must share one batched game-engine pass — observed via the
// serve.batches counter — while requests that differ in image scope or
// options must not; and every batched response must equal the
// unbatched server's answer for the same request.
func TestServeBatchCoalescing(t *testing.T) {
	sc, query := buildScenario(t)

	// Unbatched reference server for response equivalence.
	ref := serve.New(newCorpus("c", sc), nil)
	tsRef := httptest.NewServer(ref.Handler())
	defer tsRef.Close()

	cases := []struct {
		name string
		// params per concurrent request (appended to /search).
		params []string
		// wantBatches is the exact number of coalesced passes: requests
		// with equal batch keys always share, requests with different
		// keys never do.
		wantBatches int64
	}{
		{
			name:        "same image shares one pass",
			params:      []string{"?proc=ftp_retrieve_glob&image=0", "?proc=ftp_retrieve_glob&image=0", "?proc=ftp_retrieve_glob&image=0"},
			wantBatches: 1,
		},
		{
			name:        "corpus-wide requests share one pass",
			params:      []string{"?proc=ftp_retrieve_glob", "?proc=ftp_retrieve_glob"},
			wantBatches: 1,
		},
		{
			name:        "different images do not share",
			params:      []string{"?proc=ftp_retrieve_glob&image=0", "?proc=ftp_retrieve_glob&image=1"},
			wantBatches: 2,
		},
		{
			name:        "different options do not share",
			params:      []string{"?proc=ftp_retrieve_glob&image=0", "?proc=ftp_retrieve_glob&image=0&min_score=3"},
			wantBatches: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.New()
			srv := serve.New(newCorpus("c", sc), &serve.Config{
				MaxInFlight: 16,
				BatchWindow: time.Second,
				Registry:    reg,
			})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			var wg sync.WaitGroup
			bodies := make([][]byte, len(tc.params))
			errs := make(chan error, len(tc.params))
			for i, p := range tc.params {
				wg.Add(1)
				go func(i int, p string) {
					defer wg.Done()
					resp, err := http.Post(ts.URL+"/search"+p, "application/octet-stream", bytes.NewReader(query))
					if err != nil {
						errs <- err
						return
					}
					blob, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("request %d status %d: %s", i, resp.StatusCode, blob)
						return
					}
					bodies[i] = blob
				}(i, p)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			if got := reg.Counter("serve.batches").Value(); got != tc.wantBatches {
				t.Errorf("serve.batches = %d, want %d", got, tc.wantBatches)
			}
			bs := reg.Histogram("serve.batch_size")
			if bs.Count() != tc.wantBatches || bs.Sum() != int64(len(tc.params)) {
				t.Errorf("serve.batch_size count=%d sum=%d, want count=%d sum=%d",
					bs.Count(), bs.Sum(), tc.wantBatches, len(tc.params))
			}

			// Byte-level equivalence with the unbatched path.
			for i, p := range tc.params {
				refResp, refBlob := postSearch(t, tsRef.URL+"/search"+p, query)
				if refResp.StatusCode != http.StatusOK {
					t.Fatalf("reference request %d status %d: %s", i, refResp.StatusCode, refBlob)
				}
				got := normalizeResponse(t, bodies[i])
				want := normalizeResponse(t, refBlob)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("request %d: batched response diverges from unbatched:\nbatch: %+v\nref:   %+v", i, got, want)
				}
			}
		})
	}
}

// TestServeBatchImageParamErrors pins the image parameter's validation.
func TestServeBatchImageParamErrors(t *testing.T) {
	sc, query := buildScenario(t)
	srv := serve.New(newCorpus("c", sc), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, bad := range []string{"x", "-1", fmt.Sprintf("%d", len(sc.Images()))} {
		if resp, _ := postSearch(t, ts.URL+"/search?proc=ftp_retrieve_glob&image="+bad, query); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("image=%s status %d, want 400", bad, resp.StatusCode)
		}
	}
	// A bad procedure under coalescing must 400 the one request, not
	// poison a batch.
	batched := serve.New(newCorpus("c", sc), &serve.Config{BatchWindow: 50 * time.Millisecond})
	tsb := httptest.NewServer(batched.Handler())
	defer tsb.Close()
	if resp, _ := postSearch(t, tsb.URL+"/search?proc=no_such_proc", query); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown proc under batching status %d, want 400", resp.StatusCode)
	}
}

// TestServeAdmissionUnderBatching verifies load shedding still works
// while coalescing is on: a leader sleeping out its batch window holds
// its admission slot, so an over-capacity request is shed with 429
// instead of being queued into the batch.
func TestServeAdmissionUnderBatching(t *testing.T) {
	sc, query := buildScenario(t)
	reg := telemetry.New()
	srv := serve.New(newCorpus("c", sc), &serve.Config{
		MaxInFlight: 1,
		RetryAfter:  5,
		BatchWindow: time.Second,
		Registry:    reg,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/search?proc=ftp_retrieve_glob", "application/octet-stream", bytes.NewReader(query))
		if err != nil {
			done <- err
			return
		}
		blob, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			done <- err
			return
		}
		if resp.StatusCode != http.StatusOK {
			done <- fmt.Errorf("leader status %d: %s", resp.StatusCode, blob)
			return
		}
		var sr serve.SearchResponse
		if err := json.Unmarshal(blob, &sr); err != nil {
			done <- err
			return
		}
		if sr.TotalFindings == 0 {
			done <- fmt.Errorf("leader lost its findings under batching")
			return
		}
		done <- nil
	}()
	// Wait until the leader is admitted (it then sleeps out the batch
	// window while holding the only slot).
	gauge := reg.Gauge("serve.inflight")
	deadline := time.Now().Add(5 * time.Second)
	for gauge.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, _ := postSearch(t, ts.URL+"/search?proc=ftp_retrieve_glob", query)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Errorf("Retry-After = %q, want \"5\"", got)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("serve.batches").Value(); got != 1 {
		t.Errorf("serve.batches = %d, want 1", got)
	}
}

// TestServeFindingsFileSchema validates a findings JSON file captured
// from a running firmupd (the CI smoke step curls /search into a file
// and points FIRMUPD_FINDINGS_FILE here). Skipped when the variable is
// unset.
func TestServeFindingsFileSchema(t *testing.T) {
	path := os.Getenv("FIRMUPD_FINDINGS_FILE")
	if path == "" {
		t.Skip("FIRMUPD_FINDINGS_FILE not set")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatalf("findings file is not a JSON object: %v", err)
	}
	var schema int
	if err := json.Unmarshal(raw["schema_version"], &schema); err != nil || schema != serve.SchemaVersion {
		t.Fatalf("schema_version = %s, want %d", raw["schema_version"], serve.SchemaVersion)
	}
	var sr serve.SearchResponse
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Procedure == "" {
		t.Error("response lacks procedure")
	}
	if len(sr.Images) == 0 {
		t.Fatal("response has no images")
	}
	if sr.TotalFindings == 0 {
		t.Error("smoke query found nothing; expected at least one detection")
	}
	total := 0
	for i, im := range sr.Images {
		if im.Vendor == "" || im.Device == "" || im.Version == "" {
			t.Errorf("image %d lacks identity: %+v", i, im)
		}
		if im.Findings == nil {
			t.Errorf("image %d findings is null, want []", i)
		}
		for _, f := range im.Findings {
			if f.ExePath == "" || f.ProcName == "" || f.Score <= 0 || f.Confidence <= 0 {
				t.Errorf("image %d has malformed finding: %+v", i, f)
			}
		}
		total += len(im.Findings)
	}
	if total != sr.TotalFindings {
		t.Errorf("total_findings = %d but images carry %d", sr.TotalFindings, total)
	}
}
