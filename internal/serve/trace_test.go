package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"firmup"
	"firmup/internal/serve"
	"firmup/internal/telemetry"
)

// getJSON decodes a GET endpoint into v, failing the test on transport
// or decode errors.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// findTrace locates one trace by ID in the /debug/requests snapshot.
func findTrace(snap telemetry.RequestsSnapshot, id string) (telemetry.TraceSnapshot, bool) {
	for _, ts := range snap.Slowest {
		if ts.TraceID == id {
			return ts, true
		}
	}
	for _, ts := range snap.Recent {
		if ts.TraceID == id {
			return ts, true
		}
	}
	return telemetry.TraceSnapshot{}, false
}

// TestServeTraceHeaderRoundTrip pins the trace identity plumbing: a
// request carrying X-Firmup-Trace is traced under exactly that ID even
// with sampling off, the ID is echoed in both the response header and
// the trace_id field, and the full span tree — request, read_body,
// analyze_query, search, core.search — lands in /debug/requests. A
// header-less request under TraceSample 0 stays untraced.
func TestServeTraceHeaderRoundTrip(t *testing.T) {
	sc, query := buildScenario(t)
	srv := serve.New(newCorpus("c", sc), &serve.Config{TraceSample: 0})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const id = "00000000deadbeef"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/search?proc=ftp_retrieve_glob", bytes.NewReader(query))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.TraceHeader, id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, blob)
	}
	if got := resp.Header.Get(serve.TraceHeader); got != id {
		t.Errorf("response %s = %q, want %q", serve.TraceHeader, got, id)
	}
	var sr serve.SearchResponse
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.TraceID != id {
		t.Errorf("trace_id = %q, want %q", sr.TraceID, id)
	}
	if sr.TotalFindings == 0 {
		t.Error("traced request lost its findings")
	}

	var snap telemetry.RequestsSnapshot
	getJSON(t, ts.URL+"/debug/requests", &snap)
	if snap.Offered != 1 {
		t.Errorf("trace buffer offered = %d, want 1", snap.Offered)
	}
	tr, ok := findTrace(snap, id)
	if !ok {
		t.Fatalf("/debug/requests lacks trace %s: %+v", id, snap)
	}
	names := make(map[string]int)
	for _, sp := range tr.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"request", "read_body", "analyze_query", "search", "core.search"} {
		if names[want] == 0 {
			t.Errorf("trace lacks a %q span; spans: %v", want, names)
		}
	}
	if tr.DurUS <= 0 {
		t.Errorf("trace duration = %v us, want > 0", tr.DurUS)
	}

	// Without the header, TraceSample 0 must not trace.
	resp2, blob2 := postSearch(t, ts.URL+"/search?proc=ftp_retrieve_glob", query)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("untraced request status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get(serve.TraceHeader); got != "" {
		t.Errorf("untraced response carries %s = %q", serve.TraceHeader, got)
	}
	if bytes.Contains(blob2, []byte("trace_id")) {
		t.Error("untraced response encodes a trace_id")
	}
}

// TestServeTraceSampling pins head sampling: TraceSample 1 assigns a
// fresh valid trace ID to every request, and distinct requests get
// distinct IDs.
func TestServeTraceSampling(t *testing.T) {
	sc, query := buildScenario(t)
	srv := serve.New(newCorpus("c", sc), &serve.Config{TraceSample: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	seen := make(map[string]bool)
	for i := 0; i < 3; i++ {
		resp, blob := postSearch(t, ts.URL+"/search?proc=ftp_retrieve_glob", query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, blob)
		}
		var sr serve.SearchResponse
		if err := json.Unmarshal(blob, &sr); err != nil {
			t.Fatal(err)
		}
		if _, ok := telemetry.ParseTraceID(sr.TraceID); !ok {
			t.Fatalf("trace_id %q is not a valid trace ID", sr.TraceID)
		}
		if got := resp.Header.Get(serve.TraceHeader); got != sr.TraceID {
			t.Errorf("header %q disagrees with trace_id %q", got, sr.TraceID)
		}
		if seen[sr.TraceID] {
			t.Errorf("trace ID %s reused across requests", sr.TraceID)
		}
		seen[sr.TraceID] = true
	}
}

// TestServeCoalescedTraceIDs drives concurrent identical requests at a
// coalescing traced server: they must still share one batched pass
// (tracing cannot split the batch key) while every response keeps its
// own distinct trace ID, and each follower's trace records the batch
// it rode in.
func TestServeCoalescedTraceIDs(t *testing.T) {
	sc, query := buildScenario(t)
	reg := telemetry.New()
	srv := serve.New(newCorpus("c", sc), &serve.Config{
		MaxInFlight: 16,
		BatchWindow: time.Second,
		Registry:    reg,
		TraceSample: 1,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 3
	var wg sync.WaitGroup
	ids := make([]string, n)
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/search?proc=ftp_retrieve_glob", "application/octet-stream", bytes.NewReader(query))
			if err != nil {
				errs <- err
				return
			}
			blob, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d status %d: %s", i, resp.StatusCode, blob)
				return
			}
			var sr serve.SearchResponse
			if err := json.Unmarshal(blob, &sr); err != nil {
				errs <- err
				return
			}
			ids[i] = sr.TraceID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := reg.Counter("serve.batches").Value(); got != 1 {
		t.Errorf("serve.batches = %d, want 1 (tracing split the batch)", got)
	}
	seen := make(map[string]bool)
	for i, id := range ids {
		if _, ok := telemetry.ParseTraceID(id); !ok {
			t.Fatalf("request %d trace_id %q invalid", i, id)
		}
		if seen[id] {
			t.Errorf("coalesced requests share trace ID %s; want one per request", id)
		}
		seen[id] = true
	}

	// Every trace was offered and each records the coalescing stage with
	// the shared batch size.
	var snap telemetry.RequestsSnapshot
	getJSON(t, ts.URL+"/debug/requests", &snap)
	if snap.Offered != n {
		t.Errorf("trace buffer offered = %d, want %d", snap.Offered, n)
	}
	for _, id := range ids {
		tr, ok := findTrace(snap, id)
		if !ok {
			t.Errorf("/debug/requests lacks trace %s", id)
			continue
		}
		var coalesce *telemetry.TraceSpan
		for i := range tr.Spans {
			if tr.Spans[i].Name == "serve.coalesce" {
				coalesce = &tr.Spans[i]
			}
		}
		if coalesce == nil {
			t.Errorf("trace %s lacks a serve.coalesce span", id)
			continue
		}
		if got, ok := coalesce.Attrs["batch_size"].(float64); !ok || int(got) != n {
			t.Errorf("trace %s batch_size attr = %v, want %d", id, coalesce.Attrs["batch_size"], n)
		}
	}
}

// TestServeShardedTraceAttribution serves a sharded mmap-backed corpus
// and verifies a traced corpus-wide search attributes latency per
// shard: the trace's span tree carries one corpus.shard span per shard
// with distinct shard indexes, each parenting the per-image search
// work.
func TestServeShardedTraceAttribution(t *testing.T) {
	sc, query := buildScenario(t)
	const nShards = 3
	dir := t.TempDir()
	if _, err := sc.WriteShards(dir, nShards); err != nil {
		t.Fatal(err)
	}
	sharded, err := firmup.OpenSealedCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	srv := serve.New(newCorpus("sharded", sharded), &serve.Config{TraceSample: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, blob := postSearch(t, ts.URL+"/search?proc=ftp_retrieve_glob", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, blob)
	}
	var sr serve.SearchResponse
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.TotalFindings == 0 {
		t.Error("sharded traced search lost its findings")
	}

	var snap telemetry.RequestsSnapshot
	getJSON(t, ts.URL+"/debug/requests", &snap)
	tr, ok := findTrace(snap, sr.TraceID)
	if !ok {
		t.Fatalf("/debug/requests lacks trace %s", sr.TraceID)
	}
	shards := make(map[int]telemetry.TraceSpan)
	for _, sp := range tr.Spans {
		if sp.Name != "corpus.shard" {
			continue
		}
		idx, ok := sp.Attrs["shard"].(float64)
		if !ok {
			t.Fatalf("corpus.shard span lacks a shard attr: %+v", sp)
		}
		if _, dup := shards[int(idx)]; dup {
			t.Errorf("shard %d traced twice", int(idx))
		}
		shards[int(idx)] = sp
	}
	if len(shards) != nShards {
		t.Fatalf("trace has %d corpus.shard spans, want %d: %+v", len(shards), nShards, tr.Spans)
	}
	// Each shard span parents that shard's per-image search work, so
	// per-shard latency attribution is a subtree, not a flat list.
	children := make(map[int32]int)
	for _, sp := range tr.Spans {
		children[sp.Parent]++
	}
	imgSpans := 0
	for idx, sp := range shards {
		if sp.Attrs["images"] == nil {
			t.Errorf("shard %d span lacks an images attr", idx)
		}
		if children[sp.ID] == 0 {
			t.Errorf("shard %d span has no child spans; per-shard attribution lost", idx)
		}
		imgSpans += children[sp.ID]
	}
	if imgSpans == 0 {
		t.Error("no search spans attributed to any shard")
	}
}

// TestServePromEndpoint pins the Prometheus exposition: the
// content type, self-consistent 0.0.4 text format, and the serve
// metrics an operator dashboards — request counters, the latency
// histogram, uptime and corpus-age gauges.
func TestServePromEndpoint(t *testing.T) {
	sc, query := buildScenario(t)
	reg := telemetry.New()
	srv := serve.New(newCorpus("c", sc), &serve.Config{Registry: reg})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if resp, blob := postSearch(t, ts.URL+"/search?proc=ftp_retrieve_glob", query); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d: %s", resp.StatusCode, blob)
	}
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition", got)
	}
	if err := telemetry.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"firmup_serve_requests_total",
		"firmup_serve_req_search_total",
		"# TYPE firmup_serve_latency_us histogram",
		"firmup_serve_uptime_s",
		"firmup_serve_corpus_age_s",
		"firmup_serve_inflight",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	// The JSON form must still be the default.
	var snap telemetry.Snapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Counters["serve.requests"] < 1 {
		t.Errorf("JSON metrics serve.requests = %d, want >= 1", snap.Counters["serve.requests"])
	}
}

// TestServeHealthzBuildInfo pins the health payload: status, build
// revision and Go version from debug.ReadBuildInfo, process uptime and
// the serving corpus name.
func TestServeHealthzBuildInfo(t *testing.T) {
	sc, _ := buildScenario(t)
	srv := serve.New(newCorpus("health.fwcorp", sc), nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var info serve.HealthInfo
	getJSON(t, ts.URL+"/healthz", &info)
	if info.Status != "ok" {
		t.Errorf("status = %q, want ok", info.Status)
	}
	if info.Revision == "" {
		t.Error("healthz lacks a build revision")
	}
	if !strings.HasPrefix(info.GoVersion, "go") {
		t.Errorf("go_version = %q, want a go toolchain version", info.GoVersion)
	}
	if info.UptimeS < 0 {
		t.Errorf("uptime_s = %v, want >= 0", info.UptimeS)
	}
	if info.Corpus != "health.fwcorp" {
		t.Errorf("corpus = %q, want health.fwcorp", info.Corpus)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the access
// log from the server's handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeAccessLog captures the structured access log and verifies
// one well-formed JSON line per request with the method, path, status,
// latency and — for traced requests — the trace ID.
func TestServeAccessLog(t *testing.T) {
	sc, query := buildScenario(t)
	var buf syncBuffer
	srv := serve.New(newCorpus("c", sc), &serve.Config{
		TraceSample: 1,
		AccessLog:   telemetry.NewLogger(&buf, telemetry.LevelInfo),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, blob := postSearch(t, ts.URL+"/search?proc=ftp_retrieve_glob", query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, blob)
	}
	var sr serve.SearchResponse
	if err := json.Unmarshal(blob, &sr); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postSearch(t, ts.URL+"/search", query); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing proc status %d, want 400", resp.StatusCode)
	}

	// The log line is written after the response; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	var lines []string
	for {
		lines = nil
		for _, l := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if l != "" {
				lines = append(lines, l)
			}
		}
		if len(lines) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	type entry struct {
		TS        string  `json:"ts"`
		Level     string  `json:"level"`
		Msg       string  `json:"msg"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		ElapsedMS float64 `json:"elapsed_ms"`
		Trace     string  `json:"trace"`
	}
	var first entry
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("access log line is not JSON: %v\n%s", err, lines[0])
	}
	if _, err := time.Parse(time.RFC3339, first.TS); err != nil {
		t.Errorf("ts %q is not RFC3339: %v", first.TS, err)
	}
	if first.Level != "info" || first.Msg != "request" {
		t.Errorf("line identity = %q/%q, want info/request", first.Level, first.Msg)
	}
	if first.Method != "POST" || first.Path != "/search" || first.Status != 200 {
		t.Errorf("line = %+v, want POST /search 200", first)
	}
	if first.ElapsedMS <= 0 {
		t.Errorf("elapsed_ms = %v, want > 0", first.ElapsedMS)
	}
	if first.Trace != sr.TraceID {
		t.Errorf("trace = %q, want %q", first.Trace, sr.TraceID)
	}
	var second entry
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("second log line is not JSON: %v\n%s", err, lines[1])
	}
	if second.Status != 400 {
		t.Errorf("second line status = %d, want 400", second.Status)
	}
}
