package firmup_test

import (
	"reflect"
	"testing"

	"firmup/internal/core"
	"firmup/internal/corpus"
	"firmup/internal/eval"
	"firmup/internal/sim"
	"firmup/internal/uir"
)

// The memoized game engine must be indistinguishable from the reference
// on the realistic corpus: for every query procedure and every target
// executable, the full game result — target, score, steps, matched
// pairs, end reason and trace — deep-equal under both the interned
// session index and the hash-map fallback.
func TestMemoizedEngineEquivalenceOnCorpus(t *testing.T) {
	env, err := eval.Prepare(corpus.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	q, err := env.Query("wget", "1.15", uir.ArchMIPS32)
	if err != nil {
		t.Fatal(err)
	}
	var targets []*sim.Exe
	for _, u := range env.Units {
		if u.Arch == uir.ArchMIPS32 {
			targets = append(targets, u.Exe)
		}
	}
	if len(targets) < 2 {
		t.Fatalf("only %d MIPS targets", len(targets))
	}
	opt := &core.Options{RecordTrace: true}
	games, diverged := 0, 0
	for qi, qp := range q.Procs {
		if qp.Set.Size() < 3 {
			continue
		}
		for ti, tgt := range targets {
			games++
			memo := core.Match(q, qi, tgt, opt)
			ref := core.MatchReference(q, qi, tgt, opt)
			if !reflect.DeepEqual(memo, ref) {
				diverged++
				t.Errorf("query %q vs target %d: memoized engine diverges\nmemo: %+v\nref:  %+v",
					qp.Name, ti, memo, ref)
				if diverged > 3 {
					t.Fatal("too many divergences; aborting")
				}
			}
		}
	}
	if games == 0 {
		t.Fatal("no games played; scenario is vacuous")
	}
	t.Logf("%d games byte-identical across engines", games)
}

// Search through the memoized engine must agree with a search whose
// games are each replayed on the reference engine: same findings, same
// steps histogram. This pins the engine swap at the Search layer, where
// the matcher arenas are shared across workers.
func TestMemoizedSearchMatchesReferenceReplay(t *testing.T) {
	env, err := eval.Prepare(corpus.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	q, err := env.Query("wget", "1.15", uir.ArchMIPS32)
	if err != nil {
		t.Fatal(err)
	}
	qi := q.ProcByName("ftp_retrieve_glob")
	if qi < 0 {
		t.Fatal("query lacks ftp_retrieve_glob")
	}
	var targets []*sim.Exe
	for _, u := range env.Units {
		if u.Arch == uir.ArchMIPS32 {
			targets = append(targets, u.Exe)
		}
	}
	res := core.Search(q, qi, targets, eval.DefaultSearch())
	if len(res.Findings) == 0 {
		t.Fatal("search found nothing; scenario is vacuous")
	}
	// Replay each target's game on the reference engine and cross-check
	// the per-target step counts behind the accepted findings.
	stepsByPath := map[string]int{}
	for _, tgt := range targets {
		r := core.MatchReference(q, qi, tgt, &core.Options{})
		stepsByPath[tgt.Path] = r.Steps
	}
	for _, f := range res.Findings {
		if want := stepsByPath[f.ExePath]; f.Steps != want {
			t.Errorf("finding %s: steps = %d, reference replay = %d", f.ExePath, f.Steps, want)
		}
	}
}
