package firmup_test

import (
	"reflect"
	"testing"

	"firmup/internal/core"
	"firmup/internal/corpus"
	"firmup/internal/eval"
	"firmup/internal/sim"
	"firmup/internal/uir"
)

// core.Search distributes targets over a worker pool; the result must
// not depend on the pool size. Byte-identical Findings and
// StepsHistogram with 1 and 8 workers over the generated corpus.
func TestSearchDeterminismAcrossWorkers(t *testing.T) {
	env, err := eval.Prepare(corpus.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	q, err := env.Query("wget", "1.15", uir.ArchMIPS32)
	if err != nil {
		t.Fatal(err)
	}
	qi := q.ProcByName("ftp_retrieve_glob")
	if qi < 0 {
		t.Fatal("query lacks ftp_retrieve_glob")
	}
	var targets []*sim.Exe
	for _, u := range env.Units {
		if u.Arch == uir.ArchMIPS32 {
			targets = append(targets, u.Exe)
		}
	}
	if len(targets) < 2 {
		t.Fatalf("only %d MIPS targets in the corpus", len(targets))
	}
	run := func(workers int) core.SearchResult {
		opt := eval.DefaultSearch()
		opt.Workers = workers
		return core.Search(q, qi, targets, opt)
	}
	one := run(1)
	eight := run(8)
	if !reflect.DeepEqual(one.Findings, eight.Findings) {
		t.Errorf("findings depend on worker count:\n1: %+v\n8: %+v", one.Findings, eight.Findings)
	}
	if !reflect.DeepEqual(one.StepsHistogram, eight.StepsHistogram) {
		t.Errorf("steps histogram depends on worker count: %v vs %v",
			one.StepsHistogram, eight.StepsHistogram)
	}
	if one.Examined != eight.Examined {
		t.Errorf("examined counts differ: %d vs %d", one.Examined, eight.Examined)
	}
	if len(one.Findings) == 0 {
		t.Error("determinism check matched nothing; scenario is vacuous")
	}
}
