package firmup_test

import (
	"reflect"
	"testing"

	"firmup"
	"firmup/internal/core"
	"firmup/internal/corpus"
	"firmup/internal/eval"
	"firmup/internal/sim"
	"firmup/internal/uir"
)

// core.Search distributes targets over a worker pool; the result must
// not depend on the pool size. Byte-identical Findings and
// StepsHistogram with 1 and 8 workers over the generated corpus.
func TestSearchDeterminismAcrossWorkers(t *testing.T) {
	env, err := eval.Prepare(corpus.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	q, err := env.Query("wget", "1.15", uir.ArchMIPS32)
	if err != nil {
		t.Fatal(err)
	}
	qi := q.ProcByName("ftp_retrieve_glob")
	if qi < 0 {
		t.Fatal("query lacks ftp_retrieve_glob")
	}
	var targets []*sim.Exe
	for _, u := range env.Units {
		if u.Arch == uir.ArchMIPS32 {
			targets = append(targets, u.Exe)
		}
	}
	if len(targets) < 2 {
		t.Fatalf("only %d MIPS targets in the corpus", len(targets))
	}
	run := func(workers int) core.SearchResult {
		opt := eval.DefaultSearch()
		opt.Workers = workers
		return core.Search(q, qi, targets, opt)
	}
	one := run(1)
	eight := run(8)
	if !reflect.DeepEqual(one.Findings, eight.Findings) {
		t.Errorf("findings depend on worker count:\n1: %+v\n8: %+v", one.Findings, eight.Findings)
	}
	if !reflect.DeepEqual(one.StepsHistogram, eight.StepsHistogram) {
		t.Errorf("steps histogram depends on worker count: %v vs %v",
			one.StepsHistogram, eight.StepsHistogram)
	}
	if one.Examined != eight.Examined {
		t.Errorf("examined counts differ: %d vs %d", one.Examined, eight.Examined)
	}
	if len(one.Findings) == 0 {
		t.Error("determinism check matched nothing; scenario is vacuous")
	}
}

// analyzedState captures everything observable about an analyzed image
// plus a search through it, for deep comparison across analyzer
// configurations.
type analyzedState struct {
	Paths    [][2]string // path, per-exe marker of skipped vs analyzed
	Procs    [][]firmup.ProcedureInfo
	Strands  [][][]uint64
	Markers  [][][]uint32
	Findings []firmup.Finding
}

func analyzeScenario(t *testing.T, imgBytes, queryBytes []byte, aopt *firmup.AnalyzerOptions) (analyzedState, firmup.CacheStats) {
	t.Helper()
	a := firmup.NewAnalyzer(aopt)
	img, err := a.OpenImage(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	q, err := a.LoadQueryExecutable(queryBytes)
	if err != nil {
		t.Fatal(err)
	}
	var st analyzedState
	for _, e := range img.Exes {
		st.Paths = append(st.Paths, [2]string{e.Path, "analyzed"})
		procs := e.Procedures()
		st.Procs = append(st.Procs, procs)
		strands := make([][]uint64, len(procs))
		markers := make([][]uint32, len(procs))
		for i := range procs {
			strands[i] = e.ProcedureStrands(i)
			markers[i] = e.ProcedureMarkers(i)
		}
		st.Strands = append(st.Strands, strands)
		st.Markers = append(st.Markers, markers)
	}
	for _, s := range img.Skipped {
		st.Paths = append(st.Paths, [2]string{s.Path, "skipped"})
	}
	st.Findings, err = firmup.SearchImage(q, "ftp_retrieve_glob", img, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st, a.CacheStats()
}

// The analysis front end must produce byte-identical output whether it
// runs serially without the block cache or fully parallel with it: same
// procedures, same strand hash sets, same markers, same findings.
func TestAnalyzeDeterminismAcrossWorkersAndCache(t *testing.T) {
	imgBytes, queryBytes, _ := buildScenario(t)
	base, baseStats := analyzeScenario(t, imgBytes, queryBytes,
		&firmup.AnalyzerOptions{Workers: 1, DisableBlockCache: true})
	if baseStats != (firmup.CacheStats{}) {
		t.Errorf("disabled cache reported traffic: %+v", baseStats)
	}
	for _, opt := range []*firmup.AnalyzerOptions{
		{Workers: 1},                           // cache on, serial
		{Workers: 8},                           // cache on, parallel
		{Workers: 8, DisableBlockCache: true},  // cache off, parallel
		{Workers: 3, DisableBlockCache: false}, // odd split of the shared budget
	} {
		got, stats := analyzeScenario(t, imgBytes, queryBytes, opt)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("analysis under %+v diverged from serial uncached baseline", *opt)
		}
		if !opt.DisableBlockCache && stats.Blocks == 0 {
			t.Errorf("enabled cache under %+v saw no traffic", *opt)
		}
	}
	if len(base.Findings) == 0 {
		t.Error("determinism check matched nothing; scenario is vacuous")
	}
	if len(base.Procs) == 0 {
		t.Error("image produced no analyzed executables")
	}
}
