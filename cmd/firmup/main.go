// Command firmup searches firmware images for a known vulnerable
// procedure, given a query executable that contains it — the tool the
// paper's motivating scenario describes.
//
// Usage:
//
//	firmup -query wget.felf -proc ftp_retrieve_glob image1.fwim [image2.fwim ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"firmup"
)

func main() {
	queryPath := flag.String("query", "", "query executable (FWELF) containing the vulnerable procedure")
	proc := flag.String("proc", "", "name of the vulnerable procedure in the query")
	minScore := flag.Int("min-score", 0, "override minimum shared-strand count")
	minRatio := flag.Float64("min-ratio", 0, "override minimum shared-strand ratio")
	flag.Parse()

	if *queryPath == "" || *proc == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: firmup -query <exe> -proc <name> <image>...")
		os.Exit(2)
	}
	qdata, err := os.ReadFile(*queryPath)
	if err != nil {
		fatal(err)
	}
	query, err := firmup.LoadQueryExecutable(qdata)
	if err != nil {
		fatal(err)
	}
	opt := &firmup.Options{MinScore: *minScore, MinRatio: *minRatio}
	total := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		img, err := firmup.OpenImage(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "firmup: %s: %v\n", path, err)
			continue
		}
		findings, err := firmup.SearchImage(query, *proc, img, opt)
		if err != nil {
			fatal(err)
		}
		for _, f := range findings {
			total++
			fmt.Printf("%s: %s at %#x in %s (Sim=%d, confidence=%.0f%%, %d game steps)\n",
				path, f.ProcName, f.ProcAddr, f.ExePath, f.Score, 100*f.Confidence, f.GameSteps)
		}
	}
	if total == 0 {
		fmt.Println("no occurrences of", *proc, "found")
		os.Exit(1)
	}
	fmt.Printf("%d occurrence(s) of %s found\n", total, *proc)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "firmup:", err)
	os.Exit(1)
}
