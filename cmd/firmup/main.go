// Command firmup searches firmware images for a known vulnerable
// procedure, given a query executable that contains it — the tool the
// paper's motivating scenario describes.
//
// Usage:
//
//	firmup -query wget.felf -proc ftp_retrieve_glob image1.fwim [image2.fwim ...]
//	firmup ... -report run.json          # structured per-stage run report
//	firmup ... -trace-json traces.json   # per-finding game courses as JSON
//	firmup ... -debug-addr localhost:0   # expvar + pprof while running
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"firmup"
	"firmup/internal/buildinfo"
	"firmup/internal/telemetry"
)

// tracedFinding pairs one finding with the recorded course of the game
// that produced it — the -trace-json output schema.
type tracedFinding struct {
	Image string            `json:"image"`
	Exe   string            `json:"exe"`
	Proc  string            `json:"proc"`
	Game  *firmup.GameTrace `json:"game"`
}

func main() {
	queryPath := flag.String("query", "", "query executable (FWELF) containing the vulnerable procedure")
	proc := flag.String("proc", "", "name of the vulnerable procedure in the query")
	minScore := flag.Int("min-score", 0, "override minimum shared-strand count")
	minRatio := flag.Float64("min-ratio", 0, "override minimum shared-strand ratio")
	workers := flag.Int("workers", 0, "bound parallel image analysis (default GOMAXPROCS)")
	exhaustive := flag.Bool("exhaustive", false, "disable the corpus-index prefilter (examine every executable)")
	useSnap := flag.Bool("snapshot", true, "serve images from <image>.fwsnap sidecar snapshots when present")
	noSnap := flag.Bool("no-snapshot", false, "ignore sidecar snapshots and always analyze from scratch")
	verbose := flag.Bool("v", false, "report per-file skip reasons, timings and session statistics")
	reportPath := flag.String("report", "", "write a structured JSON run report (stage timings, counters, histograms) to this file")
	traceJSON := flag.String("trace-json", "", "re-play each finding's game with tracing and write the courses as JSON to this file")
	debugAddr := flag.String("debug-addr", "", "serve expvar and pprof debug endpoints on this address (e.g. localhost:6060)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	if *queryPath == "" || *proc == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: firmup -query <exe> -proc <name> <image>...")
		os.Exit(2)
	}
	qdata, err := os.ReadFile(*queryPath)
	if err != nil {
		fatal(err)
	}
	// Telemetry is enabled only when a surface asks for it; otherwise the
	// session runs with nil handles and zero recording overhead.
	var reg *telemetry.Registry
	if *reportPath != "" || *debugAddr != "" {
		reg = telemetry.New()
	}
	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "firmup: debug endpoints at http://%s/debug/\n", addr)
	}
	rep := telemetry.NewReport("firmup", telemetry.ReportConfig{
		Workers: *workers, BlockCache: true, Index: !*exhaustive,
	})
	// One analyzer session covers the query and every image: all strand
	// sets share the session's interner and every search can use the
	// per-image corpus index.
	analyzer := firmup.NewAnalyzer(&firmup.AnalyzerOptions{Workers: *workers, Telemetry: reg})
	query, err := analyzer.LoadQueryExecutable(qdata)
	if err != nil {
		fatal(err)
	}
	opt := &firmup.Options{MinScore: *minScore, MinRatio: *minRatio, Exhaustive: *exhaustive}
	total, skipped, examined, searchable := 0, 0, 0, 0
	var traces []tracedFinding
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		// Prefer the sidecar snapshot: analysis done once (e.g. by
		// fwcrawl -snapshot) is reloaded instead of recomputed, falling
		// back to the full pipeline when the sidecar is unreadable.
		var snap []byte
		if *useSnap && !*noSnap {
			snap, _ = os.ReadFile(path + ".fwsnap")
		}
		start := time.Now()
		img, err := analyzer.OpenImageWithSnapshot(data, snap)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "firmup: %s: %v\n", path, err)
			continue
		}
		if *verbose {
			mode := "analyzed"
			if snap != nil && !snapshotFailed(img) {
				mode = "loaded from snapshot"
			}
			fmt.Fprintf(os.Stderr, "firmup: %s: %s in %v\n", path, mode, elapsed.Round(time.Microsecond))
		}
		if len(img.Skipped) > 0 {
			skipped += len(img.Skipped)
			fmt.Fprintf(os.Stderr, "firmup: %s: %d executable(s) skipped during analysis\n", path, len(img.Skipped))
			if *verbose {
				for _, s := range img.Skipped {
					fmt.Fprintf(os.Stderr, "firmup: %s: skipped %s: %v\n", path, s.Path, s.Err)
				}
			}
		}
		res, err := analyzer.SearchImageDetailed(query, *proc, img, opt)
		if err != nil {
			fatal(err)
		}
		examined += res.Examined
		searchable += len(img.Exes)
		for _, f := range res.Findings {
			total++
			fmt.Printf("%s: %s at %#x in %s (Sim=%d, confidence=%.0f%%, %d game steps)\n",
				path, f.ProcName, f.ProcAddr, f.ExePath, f.Score, 100*f.Confidence, f.GameSteps)
			if *traceJSON != "" {
				target := img.Executable(f.ExePath)
				if target == nil {
					continue
				}
				_, gt, err := analyzer.MatchProcedureTraced(query, *proc, target, opt)
				if err != nil {
					fatal(err)
				}
				traces = append(traces, tracedFinding{Image: path, Exe: f.ExePath, Proc: *proc, Game: gt})
			}
		}
	}
	if *traceJSON != "" {
		blob, err := json.MarshalIndent(traces, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*traceJSON, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "firmup: wrote %d game trace(s) to %s\n", len(traces), *traceJSON)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "firmup: session: %d unique strands interned, %d/%d executables examined, %d skipped\n",
			analyzer.UniqueStrands(), examined, searchable, skipped)
	}
	if *reportPath != "" {
		rep.Finish(reg)
		if err := rep.WriteFile(*reportPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "firmup: wrote run report to %s\n", *reportPath)
	}
	if total == 0 {
		fmt.Println("no occurrences of", *proc, "found")
		os.Exit(1)
	}
	fmt.Printf("%d occurrence(s) of %s found\n", total, *proc)
}

// snapshotFailed reports whether the image's diagnostics record a
// sidecar snapshot that could not be loaded (forcing re-analysis).
func snapshotFailed(img *firmup.Image) bool {
	for _, s := range img.Skipped {
		if s.Path == firmup.SnapshotSkipPath {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "firmup:", strings.TrimPrefix(err.Error(), "firmup: "))
	os.Exit(1)
}
