// Command fwcrawl generates the evaluation corpus — the stand-in for the
// paper's firmware crawler. It builds every vendor/device/release image
// and writes the packed files to a directory, alongside a manifest.
//
// Usage:
//
//	fwcrawl -out corpus/ [-scale eval] [-compress] [-snapshot]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"firmup"
	"firmup/internal/buildinfo"
	"firmup/internal/corpus"
	_ "firmup/internal/isa/arm"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
	"firmup/internal/telemetry"
	"firmup/internal/uir"
)

func main() {
	out := flag.String("out", "corpus", "output directory")
	scale := flag.String("scale", "default", "corpus scale: default or eval")
	compress := flag.Bool("compress", true, "zlib-compress images")
	snap := flag.Bool("snapshot", false, "analyze each image and write a <name>.fwsnap sidecar snapshot")
	sealed := flag.Bool("sealed", false, "analyze every image under one shared session and write a sealed corpus.fwcorp artifact for firmupd")
	shards := flag.Int("shards", 0, "with -sealed: write the corpus as N mmap-ready FWCORP shards under corpus.fwcorp.d/ instead of one v1 artifact")
	noSigs := flag.Bool("no-sigs", false, "with -shards: omit the MinHash signature slab (pre-LSH v2 layout readable by older firmupd builds; served corpora fall back to the exact prefilter)")
	reportPath := flag.String("report", "", "write a structured JSON run report (stage timings, counters) to this file")
	debugAddr := flag.String("debug-addr", "", "serve expvar and pprof debug endpoints on this address (e.g. localhost:6060)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	// One registry spans every per-image snapshot session, so the report
	// aggregates the whole crawl's pipeline work. (Snapshot-time gauges
	// like corpus.unique_strands reflect the most recent session only.)
	var reg *telemetry.Registry
	if *reportPath != "" || *debugAddr != "" {
		reg = telemetry.New()
	}
	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fwcrawl: debug endpoints at http://%s/debug/\n", addr)
	}
	rep := telemetry.NewReport("fwcrawl", telemetry.ReportConfig{BlockCache: true, Index: true})

	sc := corpus.DefaultScale()
	if *scale == "eval" {
		sc = corpus.EvalScale()
	}
	c, err := corpus.Build(sc)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var manifest strings.Builder
	var snapStats firmup.CacheStats
	// Sealed-corpus mode shares one session across every image so the
	// artifact carries a single frozen vocabulary.
	var sealSession *firmup.Analyzer
	var sealImgs []*firmup.Image
	if *sealed {
		sealSession = firmup.NewAnalyzer(&firmup.AnalyzerOptions{Telemetry: reg})
	}
	// Skipped executables thin the corpus; they are reported per image
	// and, at the end, fail the crawl loudly instead of silently.
	skippedExes, skippedImages := 0, 0
	noteSkips := func(name string, img *firmup.Image) {
		if len(img.Skipped) == 0 {
			return
		}
		skippedImages++
		skippedExes += len(img.Skipped)
		for _, s := range img.Skipped {
			fmt.Fprintf(os.Stderr, "fwcrawl: %s: skipped %s: %v\n", name, s.Path, s.Err)
		}
	}
	for _, bi := range c.Images {
		name := fmt.Sprintf("%s_%s_%s.fwim", bi.Vendor, bi.Device, bi.FwVersion)
		name = strings.ReplaceAll(name, "/", "-")
		data := bi.Image.Pack(*compress)
		if err := os.WriteFile(filepath.Join(*out, name), data, 0o644); err != nil {
			fatal(err)
		}
		if *sealed {
			img, err := sealSession.OpenImage(data)
			if err != nil {
				fatal(fmt.Errorf("seal %s: %w", name, err))
			}
			sealImgs = append(sealImgs, img)
			noteSkips(name, img)
		}
		if *snap {
			// Each sidecar gets its own analyzer session so the embedded
			// vocabulary is self-contained; loaders re-intern it anyway.
			a := firmup.NewAnalyzer(&firmup.AnalyzerOptions{Telemetry: reg})
			img, err := a.OpenImage(data)
			if err != nil {
				fatal(fmt.Errorf("snapshot %s: %w", name, err))
			}
			if !*sealed {
				// The sealed pass already reported this image's skips; the
				// same data analyzes to the same skip set.
				noteSkips(name, img)
			}
			blob, err := a.SaveImage(img)
			if err != nil {
				fatal(fmt.Errorf("snapshot %s: %w", name, err))
			}
			if err := os.WriteFile(filepath.Join(*out, name+".fwsnap"), blob, 0o644); err != nil {
				fatal(err)
			}
			cs := a.CacheStats()
			snapStats.Blocks += cs.Blocks
			snapStats.Hits += cs.Hits
			snapStats.Unique += cs.Unique
		}
		latest := ""
		if bi.Latest {
			latest = " (latest)"
		}
		fmt.Fprintf(&manifest, "%s: %d executables, %d bytes%s\n", name, len(bi.Exes), len(data), latest)
	}
	if err := os.WriteFile(filepath.Join(*out, "MANIFEST.txt"), []byte(manifest.String()), 0o644); err != nil {
		fatal(err)
	}
	if *sealed {
		scorp, err := sealSession.Seal(sealImgs...)
		if err != nil {
			fatal(err)
		}
		if *shards > 0 {
			shardDir := filepath.Join(*out, "corpus.fwcorp.d")
			write := scorp.WriteShards
			if *noSigs {
				write = scorp.WriteShardsNoSigs
			}
			paths, err := write(shardDir, *shards)
			if err != nil {
				fatal(err)
			}
			var total int64
			for _, p := range paths {
				if st, err := os.Stat(p); err == nil {
					total += st.Size()
				}
			}
			fmt.Printf("sealed %d images (%d executables, %d unique strands, %d bytes) into %d shards under %s\n",
				len(scorp.Images()), scorp.Executables(), scorp.UniqueStrands(), total, len(paths), shardDir)
		} else {
			blob, err := scorp.Save()
			if err != nil {
				fatal(err)
			}
			sealPath := filepath.Join(*out, "corpus.fwcorp")
			if err := os.WriteFile(sealPath, blob, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("sealed %d images (%d executables, %d unique strands, %d bytes) into %s\n",
				len(scorp.Images()), scorp.Executables(), scorp.UniqueStrands(), len(blob), sealPath)
		}
	}
	// Emit the analyst-side query executables for every registry CVE, one
	// per architecture (the paper compiles queries with gcc 5.2 -O2).
	qdir := filepath.Join(*out, "queries")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		fatal(err)
	}
	for _, cve := range corpus.CVEs {
		for _, arch := range []uir.Arch{uir.ArchMIPS32, uir.ArchARM32, uir.ArchPPC32, uir.ArchX86} {
			_, f, err := corpus.QueryExe(cve.Package, cve.QueryVersion, arch)
			if err != nil {
				fatal(err)
			}
			name := fmt.Sprintf("%s_%s_%v.felf", cve.ID, cve.Package, arch)
			if err := os.WriteFile(filepath.Join(qdir, name), f.Bytes(), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	st := c.Stat()
	fmt.Printf("crawled %d images (%d executables, %d procedures) into %s\n",
		st.Images, st.Exes, st.Procedures, *out)
	if *snap {
		fmt.Printf("wrote %d sidecar analysis snapshots (.fwsnap)\n", st.Images)
		fmt.Printf("block cache across sessions: %d/%d hits (%.1f%%), %d unique blocks\n",
			snapStats.Hits, snapStats.Blocks, 100*snapStats.HitRate(), snapStats.Unique)
	}
	fmt.Printf("wrote %d query executables into %s\n", len(corpus.CVEs)*4, qdir)
	if *reportPath != "" {
		rep.Finish(reg)
		if err := rep.WriteFile(*reportPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote run report to %s\n", *reportPath)
	}
	// A skipped executable means the written corpus is thinner than the
	// built one: fail loudly so build pipelines notice instead of serving
	// an incomplete corpus.
	if skippedExes > 0 {
		fmt.Fprintf(os.Stderr, "fwcrawl: FAILED: %d executables skipped across %d images; corpus is incomplete\n",
			skippedExes, skippedImages)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fwcrawl:", err)
	os.Exit(1)
}
