// Command fwdump inspects firmware images and executables: file tables,
// recovered procedures, disassembly and canonical strands.
//
// Usage:
//
//	fwdump -image fw.fwim                      # list executables
//	fwdump -exe wget.felf                      # list procedures
//	fwdump -exe wget.felf -proc sub_440123     # disassemble one procedure
//	fwdump -exe wget.felf -proc sub_440123 -strands
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"firmup"
	"firmup/internal/buildinfo"
	"firmup/internal/cfg"
	"firmup/internal/image"
	"firmup/internal/isa"
	_ "firmup/internal/isa/arm"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
	"firmup/internal/obj"
	"firmup/internal/snapshot"
	"firmup/internal/strand"
	"firmup/internal/telemetry"
)

func main() {
	imgPath := flag.String("image", "", "firmware image to list")
	exePath := flag.String("exe", "", "executable to inspect")
	proc := flag.String("proc", "", "procedure to disassemble")
	strands := flag.Bool("strands", false, "print canonical strands instead of disassembly")
	useSnap := flag.Bool("snapshot", true, "inspect the <image>.fwsnap sidecar snapshot when present")
	noSnap := flag.Bool("no-snapshot", false, "ignore sidecar snapshots")
	noCache := flag.Bool("no-block-cache", false, "disable the session's block canonicalization cache")
	reportPath := flag.String("report", "", "write a structured JSON run report (stage timings, counters) to this file")
	debugAddr := flag.String("debug-addr", "", "serve expvar and pprof debug endpoints on this address (e.g. localhost:6060)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	var reg *telemetry.Registry
	if *reportPath != "" || *debugAddr != "" {
		reg = telemetry.New()
	}
	if *debugAddr != "" {
		addr, err := telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fwdump: debug endpoints at http://%s/debug/\n", addr)
	}
	rep := telemetry.NewReport("fwdump", telemetry.ReportConfig{BlockCache: !*noCache, Index: true})

	switch {
	case *imgPath != "":
		dumpImage(*imgPath, *useSnap && !*noSnap, *noCache, reg)
	case *exePath != "":
		dumpExe(*exePath, *proc, *strands)
	default:
		fmt.Fprintln(os.Stderr, "usage: fwdump -image <file> | -exe <file> [-proc <name>] [-strands]")
		os.Exit(2)
	}

	if *reportPath != "" {
		rep.Finish(reg)
		if err := rep.WriteFile(*reportPath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fwdump: wrote run report to %s\n", *reportPath)
	}
}

// dumpSnapshot prints the sidecar's section table and times a load
// against the fresh analysis the caller just ran.
func dumpSnapshot(path string, analyzeTime time.Duration, reg *telemetry.Registry) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return // no sidecar: nothing to report
	}
	fmt.Printf("snapshot %s: %d bytes\n", path, len(blob))
	secs, err := snapshot.Sections(blob)
	if err != nil {
		fmt.Printf("  unreadable: %v\n", err)
		return
	}
	for _, s := range secs {
		fmt.Printf("  section %-8s offset %6d  %6d bytes  crc32c %08x\n", s.Name, s.Offset, s.Length, s.CRC)
	}
	start := time.Now()
	img, err := firmup.NewAnalyzer(&firmup.AnalyzerOptions{Telemetry: reg}).LoadImage(blob)
	if err != nil {
		fmt.Printf("  load failed: %v\n", err)
		return
	}
	loadTime := time.Since(start)
	speedup := float64(analyzeTime) / float64(loadTime)
	fmt.Printf("  loaded %d executable(s) in %v vs %v fresh analysis (%.0fx)\n",
		len(img.Exes), loadTime.Round(time.Microsecond), analyzeTime.Round(time.Microsecond), speedup)
}

func dumpImage(path string, useSnap, noCache bool, reg *telemetry.Registry) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	im, err := image.Unpack(data)
	if err != nil {
		fmt.Printf("structural unpack failed (%v); carving...\n", err)
		for i, f := range image.Carve(data) {
			fmt.Printf("carved #%d: %v, entry %#x, %d syms, stripped=%v\n",
				i, f.Arch, f.Entry, len(f.Syms), f.Stripped)
		}
		return
	}
	fmt.Printf("%s %s firmware %s: %d files\n", im.Vendor, im.Device, im.Version, len(im.Files))
	for _, fe := range im.Files {
		kind := "data"
		if f, err := obj.Read(fe.Data); err == nil {
			kind = fmt.Sprintf("%v executable, stripped=%v, badclass=%v", f.Arch, f.Stripped, f.BadClass)
		}
		fmt.Printf("  %-30s %8d bytes  %s\n", fe.Path, len(fe.Data), kind)
	}

	// Analyzed view: run a one-image analyzer session and summarize what
	// a search would actually operate on.
	analyzer := firmup.NewAnalyzer(&firmup.AnalyzerOptions{DisableBlockCache: noCache, Telemetry: reg})
	start := time.Now()
	img, err := analyzer.OpenImage(data)
	analyzeTime := time.Since(start)
	if err != nil {
		fmt.Printf("analysis: %v\n", err)
		return
	}
	fmt.Printf("analysis: %d searchable executable(s), %d unique strands interned, %d index postings\n",
		len(img.Exes), analyzer.UniqueStrands(), img.IndexedStrands())
	// Always report the cache line: a disabled (or idle) cache is itself a
	// fact worth surfacing, not a reason to go quiet.
	if noCache {
		fmt.Printf("analysis: block cache disabled, %s analyze time\n", analyzeTime.Round(time.Microsecond))
	} else {
		cs := analyzer.CacheStats()
		fmt.Printf("analysis: block cache %d/%d hits (%.1f%%), %d unique blocks, %s analyze time\n",
			cs.Hits, cs.Blocks, 100*cs.HitRate(), cs.Unique, analyzeTime.Round(time.Microsecond))
	}
	for _, e := range img.Exes {
		procs := e.Procedures()
		strands := 0
		for _, p := range procs {
			strands += p.Strands
		}
		fmt.Printf("  %-30s %4d procedures %6d strands\n", e.Path, len(procs), strands)
	}
	for _, s := range img.Skipped {
		fmt.Printf("  %-30s skipped: %v\n", s.Path, s.Err)
	}
	if useSnap {
		dumpSnapshot(path+".fwsnap", analyzeTime, reg)
	}
}

func dumpExe(path, procName string, showStrands bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	f, err := obj.Read(data)
	if err != nil {
		fatal(err)
	}
	rec, err := cfg.Recover(f)
	if err != nil {
		fatal(err)
	}
	be, err := isa.ByArch(f.Arch)
	if err != nil {
		fatal(err)
	}
	if procName == "" {
		fmt.Printf("%v executable, %d procedures, text coverage %.1f%%\n",
			f.Arch, len(rec.Procs), 100*rec.Coverage)
		for _, p := range rec.Procs {
			opt := &strand.Options{ABI: be.ABI(), Sections: f.Map()}
			set := strand.FromBlocks(p.Blocks, opt)
			fmt.Printf("  %-32s %#08x  %3d blocks %4d insts %4d strands connected=%v\n",
				p.Name, p.Entry, len(p.Blocks), len(p.Insts), set.Size(), p.Connected)
		}
		return
	}
	p := rec.Proc(procName)
	if p == nil {
		fatal(fmt.Errorf("no procedure %q", procName))
	}
	if showStrands {
		opt := &strand.Options{ABI: be.ABI(), Sections: f.Map()}
		for bi, b := range p.Blocks {
			fmt.Printf("block %d @ %#x:\n", bi, b.Addr)
			for _, s := range strand.ExtractBlock(b, opt) {
				fmt.Printf("  strand %016x:\n", s.Hash)
				for _, line := range splitLines(s.Text) {
					fmt.Printf("    %s\n", line)
				}
			}
		}
		return
	}
	for _, in := range p.Insts {
		fmt.Printf("%08x  %s\n", in.Addr, isa.Disasm(be, in))
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fwdump:", err)
	os.Exit(1)
}
