package main

import (
	"encoding/json"
	"os"
	"testing"
)

// TestGameBenchFileSchema validates an externally produced
// BENCH_game.json — the CI multi-query bench smoke step runs
// `fwbench -exp game -json` and points FWBENCH_GAME_FILE here. Skipped
// when the variable is unset.
func TestGameBenchFileSchema(t *testing.T) {
	path := os.Getenv("FWBENCH_GAME_FILE")
	if path == "" {
		t.Skip("FWBENCH_GAME_FILE not set; run via the CI game bench smoke step")
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep gameBenchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("BENCH_game.json does not parse: %v", err)
	}
	if rep.Generated == "" || rep.Scale == "" {
		t.Errorf("report lacks provenance: generated=%q scale=%q", rep.Generated, rep.Scale)
	}
	if rep.GamesPerOp <= 0 || rep.Targets <= 0 {
		t.Errorf("vacuous workload: games_per_op=%d targets=%d", rep.GamesPerOp, rep.Targets)
	}
	want := map[string]bool{
		"MatchGame/reference":   false,
		"MatchGame/memoized":    false,
		"SearchMemoized":        false,
		"MultiQuery/sequential": false,
		"MultiQuery/batched":    false,
		"MultiQuery/prefilter":  false,
	}
	for _, e := range rep.Benchmarks {
		if _, ok := want[e.Name]; ok {
			want[e.Name] = true
		}
		if e.NsPerOp <= 0 {
			t.Errorf("benchmark %q has non-positive ns/op", e.Name)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("report lacks benchmark row %q", name)
		}
	}
	if rep.SpeedupNs <= 0 {
		t.Error("speedup_ns_vs_reference missing")
	}

	mq := rep.MultiQuery
	if mq.Queries <= 1 {
		t.Errorf("multi_query.queries = %d; the batched experiment needs several queries", mq.Queries)
	}
	if mq.Targets <= 0 {
		t.Errorf("multi_query.targets = %d", mq.Targets)
	}
	for name, v := range map[string]float64{
		"sequential_ns_per_op":      mq.SequentialNsPerOp,
		"batched_ns_per_op":         mq.BatchedNsPerOp,
		"prefilter_ns_per_op":       mq.PrefilterNsPerOp,
		"sequential_game_ns_per_op": mq.SequentialGameNs,
		"batched_game_ns_per_op":    mq.BatchedGameNs,
		"ns_per_query_sequential":   mq.NsPerQuerySequential,
		"ns_per_query_batched":      mq.NsPerQueryBatched,
		"speedup_ns_per_query":      mq.SpeedupNsPerQuery,
	} {
		if v <= 0 {
			t.Errorf("multi_query.%s = %v, want > 0", name, v)
		}
	}
	// The per-phase split must be internally consistent: prefilter plus
	// game re-adds to the total for both paths.
	if got := mq.PrefilterNsPerOp + mq.SequentialGameNs; got != mq.SequentialNsPerOp {
		t.Errorf("sequential phase split inconsistent: %v + %v != %v", mq.PrefilterNsPerOp, mq.SequentialGameNs, mq.SequentialNsPerOp)
	}
	if got := mq.PrefilterNsPerOp + mq.BatchedGameNs; got != mq.BatchedNsPerOp {
		t.Errorf("batched phase split inconsistent: %v + %v != %v", mq.PrefilterNsPerOp, mq.BatchedGameNs, mq.BatchedNsPerOp)
	}
}
