// Command fwbench regenerates the paper's tables and figures over the
// synthetic corpus.
//
// Usage:
//
//	fwbench -exp all            # every experiment at the default scale
//	fwbench -exp table2 -scale eval
//	fwbench -exp fig6|fig8|fig9|fig5|table1|demo|ablation|snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"firmup"
	"firmup/internal/corpus"
	"firmup/internal/eval"
	_ "firmup/internal/isa/arm"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2, fig6, fig8, fig9, ablation, fig5, table1, demo, snapshot, all")
	scale := flag.String("scale", "default", "corpus scale: default or eval")
	flag.Parse()

	valid := map[string]bool{"all": true, "table2": true, "fig6": true, "fig8": true,
		"fig9": true, "ablation": true, "fig5": true, "table1": true, "demo": true,
		"snapshot": true}
	if !valid[*exp] {
		fmt.Fprintf(os.Stderr, "fwbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	sc := corpus.DefaultScale()
	if *scale == "eval" {
		sc = corpus.EvalScale()
	}
	fmt.Printf("preparing corpus (scale=%s)...\n", *scale)
	env, err := eval.Prepare(sc)
	if err != nil {
		fatal(err)
	}
	st := env.Corpus.Stat()
	fmt.Printf("corpus ready: %d images, %d executables, %d procedures, %d unique builds\n",
		st.Images, st.Exes, st.Procedures, len(env.Units))
	fmt.Printf("session: %d unique strands interned, %d corpus-index postings\n\n",
		env.UniqueStrands(), env.Index.Postings())

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table2") {
		res, err := eval.Table2(env, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
		confirmed, latest := res.TotalConfirmed()
		fmt.Printf("total: %d confirmed vulnerable procedures, %d devices affected at their latest firmware\n\n",
			confirmed, latest)
	}
	if want("fig6") {
		res, err := eval.CompareBinDiff(env, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Fig. 6 ===")
		fmt.Println(res.Format())
	}
	var gitzRes *eval.CompareResult
	if want("fig8") || want("fig9") || want("ablation") {
		gitzRes, err = eval.CompareGitZ(env, nil)
		if err != nil {
			fatal(err)
		}
	}
	if want("fig8") {
		fmt.Println("=== Fig. 8 ===")
		fmt.Println(gitzRes.Format())
	}
	if want("fig9") || want("ablation") {
		fmt.Println("=== Fig. 9 / ablation ===")
		fmt.Println(eval.FormatFig9(gitzRes))
	}
	if want("table1") || want("demo") {
		out, err := eval.GameTrace(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
		} else {
			fmt.Println(out)
		}
	}
	if want("fig5") || want("demo") {
		out, err := eval.CallGraphs(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig5:", err)
		} else {
			fmt.Println(out)
		}
	}
	if want("demo") || *exp == "all" {
		out, err := eval.StrandDemo(env)
		if err == nil {
			fmt.Println(out)
		}
	}
	if want("snapshot") {
		snapshotTiming(env)
	}
}

// snapshotTiming measures the analyze-once-query-many win: full image
// analysis vs re-attaching a serialized snapshot, per corpus image.
func snapshotTiming(env *eval.Env) {
	fmt.Println("=== snapshot: analyze once, query many ===")
	var analyzeTotal, loadTotal time.Duration
	totalBytes := 0
	for _, bi := range env.Corpus.Images {
		data := bi.Image.Pack(true)
		a := firmup.NewAnalyzer(nil)
		t0 := time.Now()
		img, err := a.OpenImage(data)
		if err != nil {
			fatal(err)
		}
		analyzed := time.Since(t0)
		blob, err := a.SaveImage(img)
		if err != nil {
			fatal(err)
		}
		t0 = time.Now()
		loaded, err := firmup.NewAnalyzer(nil).LoadImage(blob)
		if err != nil {
			fatal(err)
		}
		load := time.Since(t0)
		analyzeTotal += analyzed
		loadTotal += load
		totalBytes += len(blob)
		fmt.Printf("  %-28s %2d exes  analyze %9v  load %9v  (%5.0fx)  %7d bytes\n",
			fmt.Sprintf("%s/%s/%s", bi.Vendor, bi.Device, bi.FwVersion), len(loaded.Exes),
			analyzed.Round(time.Microsecond), load.Round(time.Microsecond),
			float64(analyzed)/float64(load), len(blob))
	}
	if loadTotal > 0 {
		fmt.Printf("total: analyze %v, load %v (%.0fx faster), %d snapshot bytes\n\n",
			analyzeTotal.Round(time.Millisecond), loadTotal.Round(time.Millisecond),
			float64(analyzeTotal)/float64(loadTotal), totalBytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fwbench:", err)
	os.Exit(1)
}
