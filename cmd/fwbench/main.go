// Command fwbench regenerates the paper's tables and figures over the
// synthetic corpus.
//
// Usage:
//
//	fwbench -exp all            # every experiment at the default scale
//	fwbench -exp table2 -scale eval
//	fwbench -exp fig6|fig8|fig9|fig5|table1|demo|ablation|snapshot
//	fwbench -exp game -json     # memoized vs reference engine, BENCH_game.json
//	fwbench -exp analyze -json  # cached vs uncached analysis, BENCH_analyze.json
//	fwbench -exp telemetry -json  # metrics enabled vs disabled, BENCH_telemetry.json
//	fwbench -exp serve -json    # firmupd load benchmark, BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"firmup"
	"firmup/internal/buildinfo"
	"firmup/internal/core"
	"firmup/internal/corpus"
	"firmup/internal/corpusindex"
	"firmup/internal/eval"
	_ "firmup/internal/isa/arm"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
	"firmup/internal/serve"
	"firmup/internal/sim"
	"firmup/internal/telemetry"
	"firmup/internal/uir"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2, fig6, fig8, fig9, ablation, fig5, table1, demo, snapshot, game, analyze, telemetry, serve, scale, lsh, all")
	scale := flag.String("scale", "default", "corpus scale: default, eval or paper (paper selects -exp scale)")
	jsonOut := flag.Bool("json", false, "write machine-readable results of the game/analyze/telemetry/serve/scale/lsh experiments to BENCH_<exp>.json")
	images := flag.Int("images", 32, "scale/lsh experiments: generated image count")
	shards := flag.Int("shards", 4, "scale/lsh experiments: v2 shard count")
	maxRSS := flag.Int64("max-rss-bytes", 0, "scale experiment: exit 1 if peak RSS exceeds this budget (0 = unenforced)")
	compareV1 := flag.Bool("compare-v1", true, "scale experiment: also save/decode/probe the corpus as one v1 artifact (auto-off above 128 images unless set explicitly)")
	version := flag.Bool("version", false, "print build version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	valid := map[string]bool{"all": true, "table2": true, "fig6": true, "fig8": true,
		"fig9": true, "ablation": true, "fig5": true, "table1": true, "demo": true,
		"snapshot": true, "game": true, "analyze": true, "telemetry": true, "serve": true,
		"scale": true, "lsh": true}
	if !valid[*exp] {
		fmt.Fprintf(os.Stderr, "fwbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	// -scale paper is the sharded-corpus cold-start benchmark; it builds
	// its own streamed corpus at -images size, so it neither needs nor
	// fits the eval.Prepare environment below.
	if *scale == "paper" && *exp == "all" {
		*exp = "scale"
	}
	if *exp == "scale" {
		// The eager v1 decode dominates wall clock and RSS at large image
		// counts; above 128 images it stays off unless asked for by name.
		if *images > 128 {
			explicit := false
			flag.Visit(func(f *flag.Flag) {
				if f.Name == "compare-v1" {
					explicit = true
				}
			})
			if !explicit && *compareV1 {
				*compareV1 = false
				fmt.Fprintln(os.Stderr, "fwbench: scale: -compare-v1 auto-disabled above 128 images (pass -compare-v1 to force)")
			}
		}
		scaleBench(*scale, *images, *shards, *maxRSS, *jsonOut, *compareV1)
		return
	}
	// -exp lsh builds its own streamed corpus like the scale experiment.
	if *exp == "lsh" {
		lshBench(*images, *shards, *jsonOut)
		return
	}
	if *scale == "paper" {
		fmt.Fprintln(os.Stderr, "fwbench: -scale paper applies to -exp scale only")
		os.Exit(2)
	}
	sc := corpus.DefaultScale()
	if *scale == "eval" {
		sc = corpus.EvalScale()
	}
	fmt.Printf("preparing corpus (scale=%s)...\n", *scale)
	env, err := eval.Prepare(sc)
	if err != nil {
		fatal(err)
	}
	st := env.Corpus.Stat()
	fmt.Printf("corpus ready: %d images, %d executables, %d procedures, %d unique builds\n",
		st.Images, st.Exes, st.Procedures, len(env.Units))
	fmt.Printf("session: %d unique strands interned, %d corpus-index postings\n\n",
		env.UniqueStrands(), env.Index.Postings())

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table2") {
		res, err := eval.Table2(env, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Format())
		confirmed, latest := res.TotalConfirmed()
		fmt.Printf("total: %d confirmed vulnerable procedures, %d devices affected at their latest firmware\n\n",
			confirmed, latest)
	}
	if want("fig6") {
		res, err := eval.CompareBinDiff(env, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Fig. 6 ===")
		fmt.Println(res.Format())
	}
	var gitzRes *eval.CompareResult
	if want("fig8") || want("fig9") || want("ablation") {
		gitzRes, err = eval.CompareGitZ(env, nil)
		if err != nil {
			fatal(err)
		}
	}
	if want("fig8") {
		fmt.Println("=== Fig. 8 ===")
		fmt.Println(gitzRes.Format())
	}
	if want("fig9") || want("ablation") {
		fmt.Println("=== Fig. 9 / ablation ===")
		fmt.Println(eval.FormatFig9(gitzRes))
	}
	if want("table1") || want("demo") {
		out, err := eval.GameTrace(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
		} else {
			fmt.Println(out)
		}
	}
	if want("fig5") || want("demo") {
		out, err := eval.CallGraphs(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig5:", err)
		} else {
			fmt.Println(out)
		}
	}
	if want("demo") || *exp == "all" {
		out, err := eval.StrandDemo(env)
		if err == nil {
			fmt.Println(out)
		}
	}
	if want("snapshot") {
		snapshotTiming(env)
	}
	if want("game") {
		gameBench(env, *scale, *jsonOut)
	}
	if want("analyze") {
		analyzeBench(env, *scale, *jsonOut)
	}
	if want("telemetry") {
		telemetryBench(env, *scale, *jsonOut)
	}
	if want("serve") {
		serveBench(env, *scale, *jsonOut)
	}
}

// serveBenchReport is the schema of BENCH_serve.json.
type serveBenchReport struct {
	Generated     string `json:"generated"`
	Scale         string `json:"scale"`
	Images        int    `json:"images"`
	Executables   int    `json:"executables"`
	UniqueStrands int    `json:"unique_strands"`
	// Clients is the number of concurrent load generators; Requests the
	// total completed 200s across them.
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	Failures int `json:"failures"`
	// Rejected counts 429 admission-control sheds (0 at this in-flight
	// budget; the bench verifies the budget holds under its own load).
	Rejected int64 `json:"rejected_429"`
	// Swaps is the number of corpus hot-swaps performed mid-load.
	Swaps     int64   `json:"swaps"`
	ElapsedMS float64 `json:"elapsed_ms"`
	QPS       float64 `json:"qps"`
	// P50MS/P99MS are exact client-observed latency percentiles from the
	// full sorted sample set (not bucket estimates).
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// ServerP50US/ServerP99US are the server-side serve.latency_us
	// histogram quantiles (bucket-interpolated).
	ServerP50US int64 `json:"server_p50_us"`
	ServerP99US int64 `json:"server_p99_us"`
	// TraceOffered/TraceRetained are the /debug/requests tail-sampling
	// counters after the run: with TraceSample 1 every completed request
	// offers its trace, and the buffer retains the slowest few.
	TraceOffered  int64 `json:"trace_offered"`
	TraceRetained int64 `json:"trace_retained"`
	// TraceSlowestUS is the duration of the slowest captured request
	// trace, as /debug/requests reports it.
	TraceSlowestUS float64 `json:"trace_slowest_us"`
	// benchMem: OpenNs is the analyze-and-seal cold start the daemon
	// pays before serving.
	benchMem
}

// serveBench load-tests the firmupd serving path end to end: the corpus
// is sealed once, a serve.Server fronts it over real HTTP, and
// concurrent clients replay the wget CVE query while the corpus is
// hot-swapped mid-run. Reported latency includes query analysis, the
// corpus-wide search and JSON encoding — the full request cost a
// firmupd deployment would observe.
func serveBench(env *eval.Env, scale string, jsonOut bool) {
	fmt.Println("=== serve: sealed-corpus query daemon under load ===")
	tOpen := time.Now()
	a := firmup.NewAnalyzer(nil)
	var imgs []*firmup.Image
	for _, bi := range env.Corpus.Images {
		img, err := a.OpenImage(bi.Image.Pack(true))
		if err != nil {
			fatal(err)
		}
		imgs = append(imgs, img)
	}
	sealed, err := a.Seal(imgs...)
	if err != nil {
		fatal(err)
	}
	openNs := time.Since(tOpen).Nanoseconds()
	_, qf, err := corpus.QueryExe("wget", "1.15", uir.ArchMIPS32)
	if err != nil {
		fatal(err)
	}
	query := qf.Bytes()

	reg := telemetry.New()
	mk := func(name string) *serve.Corpus {
		return &serve.Corpus{Name: name, Sealed: sealed, LoadedAt: time.Now()}
	}
	srv := serve.New(mk("bench-a"), &serve.Config{MaxInFlight: 64, Registry: reg, TraceSample: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	clients := runtime.GOMAXPROCS(0)
	if clients > 8 {
		clients = 8
	}
	if clients < 2 {
		clients = 2
	}
	perClient := 200 / clients
	lat := make([][]time.Duration, clients)
	var failures atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				s0 := time.Now()
				resp, err := http.Post(ts.URL+"/search?proc=ftp_retrieve_glob", "application/octet-stream", bytes.NewReader(query))
				if err != nil {
					failures.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				lat[c] = append(lat[c], time.Since(s0))
			}
		}(c)
	}
	// Hot-swap mid-load: in-flight requests must finish against the
	// corpus they were admitted under (any failure counts above).
	reqs := reg.Counter("serve.requests")
	for reqs.Value() < int64(clients*perClient/2) {
		time.Sleep(time.Millisecond)
	}
	srv.Swap(mk("bench-b"))
	wg.Wait()
	elapsed := time.Since(t0)

	var samples []time.Duration
	for _, l := range lat {
		samples = append(samples, l...)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(q float64) time.Duration {
		if len(samples) == 0 {
			return 0
		}
		i := int(q*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	snap := reg.Snapshot()
	h := snap.Histograms["serve.latency_us"]
	// Every request ran under a sampled trace (TraceSample 1); pull the
	// tail-sampling buffer the way an operator would.
	var reqSnap telemetry.RequestsSnapshot
	if resp, err := http.Get(ts.URL + "/debug/requests"); err == nil {
		err = json.NewDecoder(resp.Body).Decode(&reqSnap)
		resp.Body.Close()
		if err != nil {
			fatal(fmt.Errorf("decode /debug/requests: %w", err))
		}
	}
	rep := serveBenchReport{
		Generated:     time.Now().UTC().Format(time.RFC3339),
		Scale:         scale,
		Images:        len(sealed.Images()),
		Executables:   sealed.Executables(),
		UniqueStrands: sealed.UniqueStrands(),
		Clients:       clients,
		Requests:      len(samples),
		Failures:      int(failures.Load()),
		Rejected:      snap.Counters["serve.rejected"],
		Swaps:         snap.Counters["serve.swaps"],
		ElapsedMS:     float64(elapsed) / float64(time.Millisecond),
		QPS:           float64(len(samples)) / elapsed.Seconds(),
		P50MS:         float64(pct(0.50)) / float64(time.Millisecond),
		P99MS:         float64(pct(0.99)) / float64(time.Millisecond),
		ServerP50US:   h.P50,
		ServerP99US:   h.P99,
		TraceOffered:  reqSnap.Offered,
		TraceRetained: reqSnap.Retained,
		benchMem:      benchMem{OpenNs: openNs, PeakRSSBytes: peakRSSBytes()},
	}
	if len(reqSnap.Slowest) > 0 {
		rep.TraceSlowestUS = reqSnap.Slowest[0].DurUS
	}
	fmt.Printf("  corpus: %d images, %d executables, %d unique strands (sealed)\n",
		rep.Images, rep.Executables, rep.UniqueStrands)
	fmt.Printf("  load:   %d clients x %d requests, 1 hot-swap mid-run\n", clients, perClient)
	fmt.Printf("  done:   %d ok, %d failed, %d rejected in %.0f ms  ->  %.1f qps\n",
		rep.Requests, rep.Failures, rep.Rejected, rep.ElapsedMS, rep.QPS)
	fmt.Printf("  latency: client p50 %.2f ms, p99 %.2f ms; server p50 %d us, p99 %d us\n",
		rep.P50MS, rep.P99MS, rep.ServerP50US, rep.ServerP99US)
	fmt.Printf("  traces: %d offered, %d retained; slowest %.0f us\n",
		rep.TraceOffered, rep.TraceRetained, rep.TraceSlowestUS)
	fmt.Printf("  cold start: %.1f ms analyze-and-seal; peak RSS %d MiB\n\n",
		float64(rep.OpenNs)/1e6, rep.PeakRSSBytes/(1<<20))
	if rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "fwbench: serve: %d requests failed under hot-swap load\n", rep.Failures)
	}
	if jsonOut {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_serve.json", append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote BENCH_serve.json")
	}
}

// analyzeBenchEntry is one benchmark row of the analyze experiment's
// machine-readable output.
type analyzeBenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// analyzeBenchReport is the schema of BENCH_analyze.json.
type analyzeBenchReport struct {
	Generated string `json:"generated"`
	Scale     string `json:"scale"`
	// Images is the number of distinct corpus images; the benchmarked
	// stream opens each twice per session (a warm-session replay).
	Images    int `json:"images"`
	StreamLen int `json:"stream_len"`
	// Cache traffic of one cached session over the stream.
	Blocks     int64               `json:"cache_blocks"`
	Hits       int64               `json:"cache_hits"`
	Unique     int                 `json:"cache_unique"`
	HitRate    float64             `json:"cache_hit_rate"`
	Benchmarks []analyzeBenchEntry `json:"benchmarks"`
	// SpeedupNs is uncached ns/op over cached ns/op for the stream
	// (>1 means the cached front end is faster).
	SpeedupNs float64 `json:"speedup_ns_vs_uncached"`
	// AllocRatio is uncached allocs/op over cached allocs/op (>1 means
	// the cached front end allocates less).
	AllocRatio float64 `json:"alloc_ratio_vs_uncached"`
	// benchMem: OpenNs is one cached warm-session pass over the stream.
	benchMem
}

// analyzeBench measures the parallel analysis front end with the block
// canonicalization cache against the uncached path. The workload is a
// warm-session stream: one analyzer session opens every corpus image
// twice, modeling both the self-similarity of real firmware corpora
// (the same statically-linked library code recurs across images) and a
// long-lived analysis service re-opening firmware revisions.
func analyzeBench(env *eval.Env, scale string, jsonOut bool) {
	fmt.Println("=== analyze: block canonicalization cache ===")
	var stream [][]byte
	for _, bi := range env.Corpus.Images {
		stream = append(stream, bi.Image.Pack(true))
	}
	images := len(stream)
	stream = append(stream, stream...)
	run := func(disableCache bool) *firmup.Analyzer {
		a := firmup.NewAnalyzer(&firmup.AnalyzerOptions{DisableBlockCache: disableCache})
		for _, data := range stream {
			if _, err := a.OpenImage(data); err != nil {
				fatal(err)
			}
		}
		return a
	}
	bench := func(disableCache bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run(disableCache)
			}
		})
	}
	cold := bench(true)
	cached := bench(false)
	tOpen := time.Now()
	stats := run(false).CacheStats()
	openNs := time.Since(tOpen).Nanoseconds()

	rep := analyzeBenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Scale:     scale,
		Images:    images,
		StreamLen: len(stream),
		Blocks:    stats.Blocks,
		Hits:      stats.Hits,
		Unique:    stats.Unique,
		HitRate:   stats.HitRate(),
		benchMem:  benchMem{OpenNs: openNs, PeakRSSBytes: peakRSSBytes()},
		Benchmarks: []analyzeBenchEntry{
			{Name: "AnalyzeStream/uncached", NsPerOp: float64(cold.NsPerOp()), AllocsPerOp: cold.AllocsPerOp(), BytesPerOp: cold.AllocedBytesPerOp()},
			{Name: "AnalyzeStream/cached", NsPerOp: float64(cached.NsPerOp()), AllocsPerOp: cached.AllocsPerOp(), BytesPerOp: cached.AllocedBytesPerOp()},
		},
	}
	if cached.NsPerOp() > 0 {
		rep.SpeedupNs = float64(cold.NsPerOp()) / float64(cached.NsPerOp())
	}
	if cached.AllocsPerOp() > 0 {
		rep.AllocRatio = float64(cold.AllocsPerOp()) / float64(cached.AllocsPerOp())
	}
	for _, e := range rep.Benchmarks {
		fmt.Printf("  %-22s %12.0f ns/op %12d B/op %10d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	fmt.Printf("  stream: %d opens of %d images per op; cache: %d/%d block hits (%.1f%%), %d unique\n",
		rep.StreamLen, rep.Images, rep.Hits, rep.Blocks, 100*rep.HitRate, rep.Unique)
	fmt.Printf("  cached vs uncached: %.2fx ns/op, %.2fx fewer allocs/op\n",
		rep.SpeedupNs, rep.AllocRatio)
	fmt.Printf("  cold start: %.1f ms cached session open; peak RSS %d MiB\n\n",
		float64(rep.OpenNs)/1e6, rep.PeakRSSBytes/(1<<20))
	if jsonOut {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_analyze.json", append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote BENCH_analyze.json")
	}
}

// gameBenchEntry is one benchmark row of the game experiment's
// machine-readable output.
type gameBenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// gameBenchReport is the schema of BENCH_game.json.
type gameBenchReport struct {
	Generated  string           `json:"generated"`
	Scale      string           `json:"scale"`
	GamesPerOp int              `json:"games_per_op"`
	Targets    int              `json:"targets"`
	Benchmarks []gameBenchEntry `json:"benchmarks"`
	// SpeedupNs is reference ns/op over memoized ns/op for the game
	// workload (>1 means the memoized engine is faster).
	SpeedupNs float64 `json:"speedup_ns_vs_reference"`
	// AllocRatio is reference allocs/op over memoized allocs/op (>1
	// means the memoized engine allocates less).
	AllocRatio float64 `json:"alloc_ratio_vs_reference"`
	// MultiQuery is the batched multi-query engine measurement.
	MultiQuery multiQueryReport `json:"multi_query"`
}

// multiQueryReport is the multi-query section of BENCH_game.json: N
// query procedures of one query executable searched against the same
// target set, sequentially (one Search per query) versus in one
// SearchBatch pass, with the per-phase prefilter/game split.
type multiQueryReport struct {
	// Queries is the number of query procedures in the batch.
	Queries int `json:"queries"`
	// Targets is the shared target-set size.
	Targets int `json:"targets"`
	// SequentialNsPerOp is the cost of running every query through its
	// own Search pass; BatchedNsPerOp is one SearchBatch over the same
	// queries.
	SequentialNsPerOp float64 `json:"sequential_ns_per_op"`
	BatchedNsPerOp    float64 `json:"batched_ns_per_op"`
	// PrefilterNsPerOp isolates the candidate-narrowing phase (identical
	// in both paths); the game-phase costs are the remainders.
	PrefilterNsPerOp     float64 `json:"prefilter_ns_per_op"`
	SequentialGameNs     float64 `json:"sequential_game_ns_per_op"`
	BatchedGameNs        float64 `json:"batched_game_ns_per_op"`
	NsPerQuerySequential float64 `json:"ns_per_query_sequential"`
	NsPerQueryBatched    float64 `json:"ns_per_query_batched"`
	// SpeedupNsPerQuery is sequential over batched ns/query (>1 means
	// batching wins).
	SpeedupNsPerQuery float64 `json:"speedup_ns_per_query"`
}

// gameBench measures the memoized game engine against the unmemoized
// reference on the corpus's game-heavy search workload: every meaningful
// query procedure against one cross-tool-chain target, plus a full
// one-procedure search across every same-arch target.
func gameBench(env *eval.Env, scale string, jsonOut bool) {
	fmt.Println("=== game: memoized engine vs reference ===")
	q, err := env.Query("wget", "1.15", uir.ArchMIPS32)
	if err != nil {
		fatal(err)
	}
	var target *sim.Exe
	var targets []*sim.Exe
	for _, u := range env.Units {
		if u.Arch != uir.ArchMIPS32 {
			continue
		}
		targets = append(targets, u.Exe)
		if u.Pkg == "wget" && target == nil {
			target = u.Exe
		}
	}
	if target == nil {
		fatal(fmt.Errorf("no MIPS wget unit in the corpus"))
	}
	var qis []int
	for qi, qp := range q.Procs {
		if qp.Set.Size() >= 3 {
			qis = append(qis, qi)
		}
	}

	games := func(run func(q *sim.Exe, qi int, t *sim.Exe, opt *core.Options) core.Result) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, qi := range qis {
					run(q, qi, target, nil)
				}
			}
		})
	}
	ref := games(core.MatchReference)
	memo := games(core.Match)
	qi := q.ProcByName("ftp_retrieve_glob")
	search := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		opt := eval.DefaultSearch()
		for i := 0; i < b.N; i++ {
			core.Search(q, qi, targets, opt)
		}
	})

	// Multi-query workload: up to eight query procedures of the one wget
	// query executable against every MIPS target — the serve coalescing
	// shape. Both paths share an identical corpus-index prefilter built
	// over exactly this target slice, so candidate narrowing is
	// apples-to-apples and the measured gap is the game engine's.
	mqis := qis
	if len(mqis) > 8 {
		mqis = mqis[:8]
	}
	batchQs := make([]core.BatchQuery, len(mqis))
	for i, qi := range mqis {
		batchQs[i] = core.BatchQuery{Q: q, QI: qi}
	}
	idx := corpusindex.NewIndex(env.It)
	for _, t := range targets {
		idx.Add(t)
	}
	mqOpt := eval.DefaultSearch()
	minScore, minRatio := mqOpt.MinScore, mqOpt.MinRatio
	mqOpt.Prefilter = func(qe *sim.Exe, qpi int, _ []*sim.Exe) ([]int, bool) {
		return idx.CandidateIndices(qe.Procs[qpi].Set, minScore, minRatio, nil)
	}
	seq := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, bq := range batchQs {
				core.Search(bq.Q, bq.QI, targets, mqOpt)
			}
		}
	})
	batched := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.SearchBatch(batchQs, targets, mqOpt)
		}
	})
	prefilter := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, bq := range batchQs {
				idx.CandidateIndices(bq.Q.Procs[bq.QI].Set, minScore, minRatio, nil)
			}
		}
	})

	rep := gameBenchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Scale:      scale,
		GamesPerOp: len(qis),
		Targets:    len(targets),
		Benchmarks: []gameBenchEntry{
			{Name: "MatchGame/reference", NsPerOp: float64(ref.NsPerOp()), AllocsPerOp: ref.AllocsPerOp(), BytesPerOp: ref.AllocedBytesPerOp()},
			{Name: "MatchGame/memoized", NsPerOp: float64(memo.NsPerOp()), AllocsPerOp: memo.AllocsPerOp(), BytesPerOp: memo.AllocedBytesPerOp()},
			{Name: "SearchMemoized", NsPerOp: float64(search.NsPerOp()), AllocsPerOp: search.AllocsPerOp(), BytesPerOp: search.AllocedBytesPerOp()},
			{Name: "MultiQuery/sequential", NsPerOp: float64(seq.NsPerOp()), AllocsPerOp: seq.AllocsPerOp(), BytesPerOp: seq.AllocedBytesPerOp()},
			{Name: "MultiQuery/batched", NsPerOp: float64(batched.NsPerOp()), AllocsPerOp: batched.AllocsPerOp(), BytesPerOp: batched.AllocedBytesPerOp()},
			{Name: "MultiQuery/prefilter", NsPerOp: float64(prefilter.NsPerOp()), AllocsPerOp: prefilter.AllocsPerOp(), BytesPerOp: prefilter.AllocedBytesPerOp()},
		},
		MultiQuery: multiQueryReport{
			Queries:           len(batchQs),
			Targets:           len(targets),
			SequentialNsPerOp: float64(seq.NsPerOp()),
			BatchedNsPerOp:    float64(batched.NsPerOp()),
			PrefilterNsPerOp:  float64(prefilter.NsPerOp()),
		},
	}
	mq := &rep.MultiQuery
	mq.SequentialGameNs = mq.SequentialNsPerOp - mq.PrefilterNsPerOp
	mq.BatchedGameNs = mq.BatchedNsPerOp - mq.PrefilterNsPerOp
	if n := float64(len(batchQs)); n > 0 {
		mq.NsPerQuerySequential = mq.SequentialNsPerOp / n
		mq.NsPerQueryBatched = mq.BatchedNsPerOp / n
	}
	if mq.BatchedNsPerOp > 0 {
		mq.SpeedupNsPerQuery = mq.SequentialNsPerOp / mq.BatchedNsPerOp
	}
	if memo.NsPerOp() > 0 {
		rep.SpeedupNs = float64(ref.NsPerOp()) / float64(memo.NsPerOp())
	}
	if memo.AllocsPerOp() > 0 {
		rep.AllocRatio = float64(ref.AllocsPerOp()) / float64(memo.AllocsPerOp())
	}
	for _, e := range rep.Benchmarks {
		fmt.Printf("  %-22s %12.0f ns/op %10d B/op %8d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	fmt.Printf("  %d games/op over %d query procedures; search spans %d targets\n",
		rep.GamesPerOp, rep.GamesPerOp, rep.Targets)
	fmt.Printf("  memoized vs reference: %.2fx ns/op, %.2fx fewer allocs/op\n",
		rep.SpeedupNs, rep.AllocRatio)
	fmt.Printf("  multi-query: %d queries x %d targets, prefilter %.0f ns, game %0.f -> %.0f ns, %.2fx ns/query batched\n\n",
		mq.Queries, mq.Targets, mq.PrefilterNsPerOp, mq.SequentialGameNs, mq.BatchedGameNs, mq.SpeedupNsPerQuery)
	if jsonOut {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_game.json", append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote BENCH_game.json")
	}
}

// telemetryBenchEntry is one benchmark row of the telemetry experiment's
// machine-readable output.
type telemetryBenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// telemetryBenchReport is the schema of BENCH_telemetry.json.
type telemetryBenchReport struct {
	Generated  string                `json:"generated"`
	Scale      string                `json:"scale"`
	Images     int                   `json:"images"`
	GamesPerOp int                   `json:"games_per_op"`
	Benchmarks []telemetryBenchEntry `json:"benchmarks"`
	// AnalyzeOverheadNs is enabled ns/op over disabled ns/op for the
	// full-image analysis path (1.0 means telemetry is free).
	AnalyzeOverheadNs float64 `json:"analyze_overhead_ns_vs_disabled"`
	// GameOverheadNs is the same ratio for the game-heavy match path.
	GameOverheadNs float64 `json:"game_overhead_ns_vs_disabled"`
	// SearchGamesPerOp is the total games one Search benchmark op plays
	// (every meaningful wget query procedure against every corpus
	// executable).
	SearchGamesPerOp int `json:"search_games_per_op"`
	// TraceUnsampledOverhead is Search ns/op with metrics attached and a
	// nil request trace — the production firmupd state for unsampled
	// requests — over the all-off baseline (acceptance: <= 1.05).
	TraceUnsampledOverhead float64 `json:"trace_unsampled_overhead_ns_vs_notel"`
	// TraceExtraAllocsPerGame is the extra allocations per game the nil
	// trace plumbing adds over the baseline (acceptance: 0).
	TraceExtraAllocsPerGame float64 `json:"trace_extra_allocs_per_game"`
	// TraceSampledOverhead is Search ns/op with a live pooled trace over
	// the unsampled state — the marginal cost of actually sampling a
	// request (informational; sampled requests are the minority).
	TraceSampledOverhead float64 `json:"trace_sampled_overhead_ns_vs_unsampled"`
}

// telemetryBench measures the cost of pipeline telemetry on the two hot
// paths it instruments: full-image analysis (parse → recover → lift →
// strands → index) and the back-and-forth game. Each path runs once with
// telemetry disabled (nil registry: every handle is nil, recording calls
// are no-ops) and once recording into a live registry.
func telemetryBench(env *eval.Env, scale string, jsonOut bool) {
	fmt.Println("=== telemetry: metrics enabled vs disabled ===")
	var stream [][]byte
	for _, bi := range env.Corpus.Images {
		stream = append(stream, bi.Image.Pack(true))
	}
	analyze := func(reg *telemetry.Registry) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := firmup.NewAnalyzer(&firmup.AnalyzerOptions{Telemetry: reg})
				for _, data := range stream {
					if _, err := a.OpenImage(data); err != nil {
						fatal(err)
					}
				}
			}
		})
	}
	analyzeOff := analyze(nil)
	analyzeOn := analyze(telemetry.New())

	// Game path: the gameBench workload — every meaningful wget query
	// procedure against one cross-tool-chain MIPS target.
	q, err := env.Query("wget", "1.15", uir.ArchMIPS32)
	if err != nil {
		fatal(err)
	}
	var target *sim.Exe
	for _, u := range env.Units {
		if u.Arch == uir.ArchMIPS32 && u.Pkg == "wget" {
			target = u.Exe
			break
		}
	}
	if target == nil {
		fatal(fmt.Errorf("no MIPS wget unit in the corpus"))
	}
	var qis []int
	for qi, qp := range q.Procs {
		if qp.Set.Size() >= 3 {
			qis = append(qis, qi)
		}
	}
	games := func(tel *core.Telemetry) testing.BenchmarkResult {
		opt := &core.Options{Tel: tel}
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, qi := range qis {
					core.Match(q, qi, target, opt)
				}
			}
		})
	}
	reg := telemetry.New()
	coreTel := func(reg *telemetry.Registry) *core.Telemetry {
		return &core.Telemetry{
			Games:            reg.Counter("game.played"),
			Steps:            reg.Histogram("game.steps"),
			AcceptedSteps:    reg.Histogram("game.steps.accepted"),
			MatcherHits:      reg.Counter("game.matcher_hits"),
			MatcherMisses:    reg.Counter("game.matcher_misses"),
			Searches:         reg.Counter("search.runs"),
			PrefilterKept:    reg.Counter("search.targets_kept"),
			PrefilterSkipped: reg.Counter("search.targets_skipped"),
		}
	}
	gamesOff := games(nil)
	gamesOn := games(coreTel(reg))

	// Tracing path: the serve pipeline threads a request-scoped trace
	// through SearchOptions. Measure the full corpus-wide search in the
	// three states a firmupd deployment sees: no telemetry at all, the
	// unsampled-request state (metrics attached, nil trace — must be
	// indistinguishable from the baseline), and a sampled request with a
	// live pooled trace. Workers 1 keeps the measurement serial.
	var allTargets []*sim.Exe
	for _, u := range env.Units {
		allTargets = append(allTargets, u.Exe)
	}
	search := func(tel *core.Telemetry, traced bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opt := &core.SearchOptions{Game: core.Options{Tel: tel}, Workers: 1}
				var tr *telemetry.Trace
				if traced {
					tr = telemetry.NewTrace(telemetry.NewTraceID())
					root := tr.Start("request", 0)
					opt.Trace = tr
					opt.TraceParent = root.ID()
				}
				for _, qi := range qis {
					core.Search(q, qi, allTargets, opt)
				}
				if tr != nil {
					tr.Finish()
					tr.Free()
				}
			}
		})
	}
	searchGames := 0
	for _, qi := range qis {
		res := core.Search(q, qi, allTargets, &core.SearchOptions{Workers: 1})
		searchGames += res.Examined
	}
	searchNotel := search(nil, false)
	searchUnsampled := search(coreTel(telemetry.New()), false)
	searchSampled := search(coreTel(telemetry.New()), true)

	rep := telemetryBenchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Scale:      scale,
		Images:     len(stream),
		GamesPerOp: len(qis),
		Benchmarks: []telemetryBenchEntry{
			{Name: "AnalyzeImages/disabled", NsPerOp: float64(analyzeOff.NsPerOp()), AllocsPerOp: analyzeOff.AllocsPerOp(), BytesPerOp: analyzeOff.AllocedBytesPerOp()},
			{Name: "AnalyzeImages/enabled", NsPerOp: float64(analyzeOn.NsPerOp()), AllocsPerOp: analyzeOn.AllocsPerOp(), BytesPerOp: analyzeOn.AllocedBytesPerOp()},
			{Name: "MatchGame/disabled", NsPerOp: float64(gamesOff.NsPerOp()), AllocsPerOp: gamesOff.AllocsPerOp(), BytesPerOp: gamesOff.AllocedBytesPerOp()},
			{Name: "MatchGame/enabled", NsPerOp: float64(gamesOn.NsPerOp()), AllocsPerOp: gamesOn.AllocsPerOp(), BytesPerOp: gamesOn.AllocedBytesPerOp()},
			{Name: "Search/notel", NsPerOp: float64(searchNotel.NsPerOp()), AllocsPerOp: searchNotel.AllocsPerOp(), BytesPerOp: searchNotel.AllocedBytesPerOp()},
			{Name: "Search/unsampled", NsPerOp: float64(searchUnsampled.NsPerOp()), AllocsPerOp: searchUnsampled.AllocsPerOp(), BytesPerOp: searchUnsampled.AllocedBytesPerOp()},
			{Name: "Search/sampled", NsPerOp: float64(searchSampled.NsPerOp()), AllocsPerOp: searchSampled.AllocsPerOp(), BytesPerOp: searchSampled.AllocedBytesPerOp()},
		},
		SearchGamesPerOp: searchGames,
	}
	if analyzeOff.NsPerOp() > 0 {
		rep.AnalyzeOverheadNs = float64(analyzeOn.NsPerOp()) / float64(analyzeOff.NsPerOp())
	}
	if gamesOff.NsPerOp() > 0 {
		rep.GameOverheadNs = float64(gamesOn.NsPerOp()) / float64(gamesOff.NsPerOp())
	}
	if searchNotel.NsPerOp() > 0 {
		rep.TraceUnsampledOverhead = float64(searchUnsampled.NsPerOp()) / float64(searchNotel.NsPerOp())
	}
	if searchUnsampled.NsPerOp() > 0 {
		rep.TraceSampledOverhead = float64(searchSampled.NsPerOp()) / float64(searchUnsampled.NsPerOp())
	}
	if searchGames > 0 {
		rep.TraceExtraAllocsPerGame = float64(searchUnsampled.AllocsPerOp()-searchNotel.AllocsPerOp()) / float64(searchGames)
	}
	for _, e := range rep.Benchmarks {
		fmt.Printf("  %-24s %12.0f ns/op %12d B/op %10d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	fmt.Printf("  analyze: %.3fx ns/op enabled vs disabled; game: %.3fx ns/op\n",
		rep.AnalyzeOverheadNs, rep.GameOverheadNs)
	fmt.Printf("  trace:   %.3fx ns/op unsampled vs notel (%+.3f allocs/game), %.3fx sampled vs unsampled over %d games/op\n\n",
		rep.TraceUnsampledOverhead, rep.TraceExtraAllocsPerGame, rep.TraceSampledOverhead, rep.SearchGamesPerOp)
	if jsonOut {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile("BENCH_telemetry.json", append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote BENCH_telemetry.json")
	}
}

// snapshotTiming measures the analyze-once-query-many win: full image
// analysis vs re-attaching a serialized snapshot, per corpus image.
func snapshotTiming(env *eval.Env) {
	fmt.Println("=== snapshot: analyze once, query many ===")
	var analyzeTotal, loadTotal time.Duration
	totalBytes := 0
	for _, bi := range env.Corpus.Images {
		data := bi.Image.Pack(true)
		a := firmup.NewAnalyzer(nil)
		t0 := time.Now()
		img, err := a.OpenImage(data)
		if err != nil {
			fatal(err)
		}
		analyzed := time.Since(t0)
		blob, err := a.SaveImage(img)
		if err != nil {
			fatal(err)
		}
		t0 = time.Now()
		loaded, err := firmup.NewAnalyzer(nil).LoadImage(blob)
		if err != nil {
			fatal(err)
		}
		load := time.Since(t0)
		analyzeTotal += analyzed
		loadTotal += load
		totalBytes += len(blob)
		fmt.Printf("  %-28s %2d exes  analyze %9v  load %9v  (%5.0fx)  %7d bytes\n",
			fmt.Sprintf("%s/%s/%s", bi.Vendor, bi.Device, bi.FwVersion), len(loaded.Exes),
			analyzed.Round(time.Microsecond), load.Round(time.Microsecond),
			float64(analyzed)/float64(load), len(blob))
	}
	if loadTotal > 0 {
		fmt.Printf("total: analyze %v, load %v (%.0fx faster), %d snapshot bytes\n\n",
			analyzeTotal.Round(time.Millisecond), loadTotal.Round(time.Millisecond),
			float64(analyzeTotal)/float64(loadTotal), totalBytes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fwbench:", err)
	os.Exit(1)
}
