package main

import (
	"bytes"
	"os"
	"strconv"
)

// benchMem is the memory/latency section shared by every fwbench JSON
// report: how long the experiment's corpus took to open (decode or
// map) and the process's peak resident set. Embedded, so the fields
// land flat in each report.
type benchMem struct {
	OpenNs       int64 `json:"open_ns"`
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

// procStatusBytes reads one kB-denominated field of /proc/self/status
// (VmHWM, VmRSS) as bytes, returning 0 where procfs is unavailable —
// reports then carry 0, which consumers treat as "not measured".
func procStatusBytes(field string) int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	prefix := []byte(field + ":")
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, prefix) {
			continue
		}
		f := bytes.Fields(line[len(prefix):])
		if len(f) == 0 {
			return 0
		}
		kb, err := strconv.ParseInt(string(f[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// peakRSSBytes reports the process's high-water resident set.
func peakRSSBytes() int64 { return procStatusBytes("VmHWM") }

// currentRSSBytes reports the current resident set.
func currentRSSBytes() int64 { return procStatusBytes("VmRSS") }
