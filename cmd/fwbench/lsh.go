package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"firmup"
	"firmup/internal/corpus"
	"firmup/internal/eval"
	"firmup/internal/uir"
)

// lshQueryReport is one CVE query's exact-vs-approx accounting.
type lshQueryReport struct {
	CVE       string `json:"cve"`
	Procedure string `json:"procedure"`
	// Examined counts are summed over every per-image search result:
	// the candidates the game engine actually played against.
	ExactExamined  int     `json:"exact_examined"`
	ApproxExamined int     `json:"approx_examined"`
	ExactFindings  int     `json:"exact_findings"`
	ApproxFindings int     `json:"approx_findings"`
	ExactNs        int64   `json:"exact_ns"`
	ApproxNs       int64   `json:"approx_ns"`
	Recall         float64 `json:"recall"`
}

// lshBenchReport is the "lsh" section merged into BENCH_scale.json.
type lshBenchReport struct {
	Generated      string           `json:"generated"`
	Images         int              `json:"images"`
	Shards         int              `json:"shards"`
	Queries        []lshQueryReport `json:"queries"`
	ExactExamined  int              `json:"exact_examined"`
	ApproxExamined int              `json:"approx_examined"`
	// ExaminedRatio is approx/exact total candidates examined: the
	// fraction of exact-prefilter candidates the LSH band gate leaves
	// standing.
	ExaminedRatio float64 `json:"examined_ratio"`
	SpeedupSearch float64 `json:"speedup_search"`
	// Recall is pooled over all queries; the CI floor is 0.95.
	Recall float64 `json:"recall"`
}

// lshQueries are the CVE probes the experiment replays in both modes.
var lshQueries = []struct {
	cve, pkg, version, proc string
	arch                    uir.Arch
}{
	{"CVE-2014-4877", "wget", "1.15", "ftp_retrieve_glob", uir.ArchMIPS32},
	{"CVE-2013-1944", "libcurl", "7.29.0", "tailmatch", uir.ArchARM32},
}

// lshBench measures the MinHash/LSH candidate tier at corpus scale:
// the streamed corpus is sealed, written as v3 shards (signature slab
// included), reopened mmap-backed, and probed with the CVE queries in
// exact mode (LSH ranks probe order, candidate set unchanged) and in
// approximate mode (band collisions gate the candidate set). Reported:
// candidates examined, wall clock, and approximate recall against the
// exact findings. Exits non-zero if pooled recall drops below 0.95.
func lshBench(nImages, nShards int, jsonOut bool) {
	if nImages < 1 {
		nImages = 1
	}
	if nShards < 1 {
		nShards = 1
	}
	fmt.Printf("=== lsh: MinHash candidate tier, %d images x %d shards ===\n", nImages, nShards)

	a := firmup.NewAnalyzer(nil)
	var imgs []*firmup.Image
	err := corpus.Stream(corpus.ScaleForImages(nImages), func(bi *corpus.BuiltImage) error {
		if len(imgs) >= nImages {
			return corpus.ErrStop
		}
		img, err := a.OpenImage(bi.Image.Pack(true))
		if err != nil {
			return err
		}
		imgs = append(imgs, img)
		return nil
	})
	if err != nil {
		fatal(err)
	}
	sealed, err := a.Seal(imgs...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  sealed %d images: %d executables, %d unique strands\n",
		len(imgs), sealed.Executables(), sealed.UniqueStrands())

	dir, err := os.MkdirTemp("", "fwbench-lsh-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	shardDir := filepath.Join(dir, "shards")
	if _, err := sealed.WriteShards(shardDir, nShards); err != nil {
		fatal(err)
	}
	a, imgs, sealed = nil, nil, nil

	sc, err := firmup.OpenSealedCorpus(shardDir)
	if err != nil {
		fatal(err)
	}
	defer sc.Close()

	rep := lshBenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Images:    nImages,
		Shards:    nShards,
	}
	var pooled eval.RecallStats
	for _, q := range lshQueries {
		_, qf, err := corpus.QueryExe(q.pkg, q.version, q.arch)
		if err != nil {
			fatal(err)
		}
		qe, err := sc.AnalyzeQuery(qf.Bytes())
		if err != nil {
			fatal(err)
		}
		run := func(approx bool) ([]firmup.ImageFindings, int64) {
			t0 := time.Now()
			res, err := sc.SearchAll(qe, q.proc, &firmup.Options{Approx: approx})
			if err != nil {
				fatal(err)
			}
			return res, time.Since(t0).Nanoseconds()
		}
		// Untimed warm-up: materialize every executable the timed passes
		// will touch, so the exact pass (first) doesn't pay the cold
		// mmap/materialization cost that the approximate pass (a subset
		// of the same candidates, run second) would then skip for free.
		run(false)
		exactRes, exactNs := run(false)
		approxRes, approxNs := run(true)

		row := lshQueryReport{CVE: q.cve, Procedure: q.proc, ExactNs: exactNs, ApproxNs: approxNs}
		exactKeys := findingKeys(exactRes)
		approxKeys := findingKeys(approxRes)
		row.ExactFindings = len(exactKeys)
		row.ApproxFindings = len(approxKeys)
		for _, img := range exactRes {
			row.ExactExamined += img.Examined
		}
		for _, img := range approxRes {
			row.ApproxExamined += img.Examined
		}
		var rs eval.RecallStats
		rs.Observe(exactKeys, approxKeys)
		pooled.Observe(exactKeys, approxKeys)
		row.Recall = rs.Recall()
		rep.Queries = append(rep.Queries, row)
		rep.ExactExamined += row.ExactExamined
		rep.ApproxExamined += row.ApproxExamined
		fmt.Printf("  %s %s: examined %d -> %d, findings %d -> %d, recall %.3f, %.2f ms -> %.2f ms\n",
			q.cve, q.proc, row.ExactExamined, row.ApproxExamined,
			row.ExactFindings, row.ApproxFindings, row.Recall,
			float64(exactNs)/1e6, float64(approxNs)/1e6)
	}
	rep.Recall = pooled.Recall()
	if rep.ExactExamined > 0 {
		rep.ExaminedRatio = float64(rep.ApproxExamined) / float64(rep.ExactExamined)
	}
	var exactNs, approxNs int64
	for _, row := range rep.Queries {
		exactNs += row.ExactNs
		approxNs += row.ApproxNs
	}
	if approxNs > 0 {
		rep.SpeedupSearch = float64(exactNs) / float64(approxNs)
	}
	fmt.Printf("  total: examined %d -> %d (ratio %.3f), recall %.3f, speedup %.2fx\n\n",
		rep.ExactExamined, rep.ApproxExamined, rep.ExaminedRatio, rep.Recall, rep.SpeedupSearch)

	if jsonOut {
		if err := updateBenchScale(func(doc map[string]json.RawMessage) error {
			blob, err := json.Marshal(rep)
			if err != nil {
				return err
			}
			doc["lsh"] = blob
			return nil
		}); err != nil {
			fatal(err)
		}
		fmt.Println("merged lsh section into BENCH_scale.json")
	}
	if rep.Recall < 0.95 {
		fmt.Fprintf(os.Stderr, "fwbench: lsh: approximate recall %.3f below 0.95 floor\n", rep.Recall)
		os.Exit(1)
	}
}

// findingKeys flattens per-image search results into recall keys.
func findingKeys(res []firmup.ImageFindings) map[eval.FindingKey]bool {
	keys := make(map[eval.FindingKey]bool)
	for i, img := range res {
		for _, f := range img.Findings {
			keys[eval.FindingKey{Image: i, ExePath: f.ExePath, ProcAddr: f.ProcAddr}] = true
		}
	}
	return keys
}

// updateBenchScale rewrites BENCH_scale.json in place, applying mutate
// to whatever JSON object the file already holds. The scale and lsh
// experiments share the file — each owns its keys and preserves the
// other's, so either can run (and re-run) independently.
func updateBenchScale(mutate func(doc map[string]json.RawMessage) error) error {
	doc := map[string]json.RawMessage{}
	if blob, err := os.ReadFile("BENCH_scale.json"); err == nil {
		// A malformed file is rebuilt from scratch rather than erroring.
		_ = json.Unmarshal(blob, &doc)
	}
	if err := mutate(doc); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_scale.json", append(blob, '\n'), 0o644)
}
