// Command firmupd is the long-running FirmUp query daemon: it loads a
// sealed corpus — a v1 artifact (fwcrawl -sealed / SealedCorpus.Save)
// or a directory of mmap-backed v2 shards (fwcrawl -sealed -shards N /
// SealedCorpus.WriteShards) — at startup and serves CVE-search queries
// over HTTP.
//
//	firmupd -corpus corpus.fwcorp -addr :8080
//	firmupd -corpus corpus.fwcorp.d -addr :8080
//
// Query it by POSTing a query executable (an FWELF binary, typically
// compiled from the vulnerable package version) with the procedure to
// look for:
//
//	curl -s -X POST --data-binary @CVE-2014-4877_wget_mips32.felf \
//	    'http://localhost:8080/search?proc=ftp_retrieve_glob'
//
// Endpoints: POST /search (findings JSON), GET /healthz, GET /corpus,
// GET /metrics, and — when -allow-swap is set — POST /swap?path=... to
// hot-swap the serving corpus without dropping in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"firmup"
	"firmup/internal/buildinfo"
	"firmup/internal/serve"
	"firmup/internal/telemetry"
)

func main() {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		corpusPath      = flag.String("corpus", "", "sealed corpus artifact to serve (required)")
		maxInFlight     = flag.Int("max-inflight", 0, "max concurrently admitted searches (0 = 2x GOMAXPROCS)")
		retryAfter      = flag.Int("retry-after", 1, "Retry-After seconds sent with 429 responses")
		queryWorkers    = flag.Int("query-workers", 0, "per-request query-analysis worker budget (0 = GOMAXPROCS)")
		searchWorkers   = flag.Int("search-workers", 0, "per-request search worker budget (0 = GOMAXPROCS)")
		allowSwap       = flag.Bool("allow-swap", false, "enable POST /swap?path=... corpus hot-swap")
		approx          = flag.Bool("approx", false, "default /search to the approximate LSH candidate tier (per-request approx=0/1 overrides)")
		batchWindow     = flag.Duration("batch-window", 0, "coalesce concurrent same-target searches into one batched pass, waiting this long for followers (0 = off)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 30*time.Second, "graceful shutdown grace period")
		traceSample     = flag.Int("trace-sample", 1, "request tracing sample rate: 0 = X-Firmup-Trace-carrying requests only, 1 = all, N = every Nth")
		traceSlow       = flag.Duration("trace-slow", 500*time.Millisecond, "always retain traces of requests at least this slow for /debug/requests (negative = off)")
		traceKeep       = flag.Int("trace-keep", 16, "how many slowest request traces /debug/requests retains")
		accessLog       = flag.String("access-log", "-", "structured JSON access log destination: - for stderr, a file path to append to, empty to disable")
		version         = flag.Bool("version", false, "print build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}
	if *corpusPath == "" {
		fmt.Fprintln(os.Stderr, "firmupd: -corpus is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := telemetry.New()
	cs, err := loadCorpus(*corpusPath, reg)
	if err != nil {
		log.Fatalf("firmupd: %v", err)
	}
	log.Printf("firmupd: loaded %s: %d images, %d executables, %d unique strands",
		cs.Name, len(cs.Sealed.Images()), cs.Sealed.Executables(), cs.Sealed.UniqueStrands())

	logger, err := openAccessLog(*accessLog)
	if err != nil {
		log.Fatalf("firmupd: %v", err)
	}

	srv := serve.New(cs, &serve.Config{
		MaxInFlight:   *maxInFlight,
		RetryAfter:    *retryAfter,
		QueryWorkers:  *queryWorkers,
		SearchWorkers: *searchWorkers,
		Approx:        *approx,
		BatchWindow:   *batchWindow,
		Registry:      reg,
		TraceSample:   *traceSample,
		TraceSlow:     *traceSlow,
		TraceKeep:     *traceKeep,
		AccessLog:     logger,
	})

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *allowSwap {
		mux.HandleFunc("/swap", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST /swap?path=<artifact>", http.StatusMethodNotAllowed)
				return
			}
			path := r.URL.Query().Get("path")
			if path == "" {
				http.Error(w, "missing required query parameter: path", http.StatusBadRequest)
				return
			}
			next, err := loadCorpus(path, reg)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			prev := srv.Swap(next)
			log.Printf("firmupd: swapped corpus %s -> %s", prev.Name, next.Name)
			fmt.Fprintf(w, "swapped %s -> %s\n", prev.Name, next.Name)
		})
	}

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("firmupd: serving on %s", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("firmupd: %v", err)
	case sig := <-sigCh:
		log.Printf("firmupd: %s: draining in-flight requests", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Fatalf("firmupd: shutdown: %v", err)
		}
	}
}

// openAccessLog resolves the -access-log destination: "-" is stderr,
// "" disables (nil logger — every log call is a no-op), anything else
// is a file path appended to.
func openAccessLog(dst string) (*telemetry.Logger, error) {
	switch dst {
	case "":
		return nil, nil
	case "-":
		return telemetry.NewLogger(os.Stderr, telemetry.LevelInfo), nil
	}
	f, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("access log: %w", err)
	}
	return telemetry.NewLogger(f, telemetry.LevelInfo), nil
}

// loadCorpus opens one sealed corpus: a v1 artifact (decoded into
// RAM), a single shard file, or a directory of shards (both
// mmap-backed and lazily materialized). Prefilter telemetry (index.*
// and lsh.* metrics) is attached to the corpus before it serves.
func loadCorpus(path string, reg *telemetry.Registry) (*serve.Corpus, error) {
	sc, err := firmup.OpenSealedCorpus(path)
	if err != nil {
		if errors.Is(err, firmup.ErrSnapshotCorrupt) {
			return nil, fmt.Errorf("%s: corrupt sealed corpus: %w", path, err)
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sc.SetTelemetry(reg)
	if shards := sc.Shards(); shards != nil {
		mapped := 0
		for _, sh := range shards {
			if sh.Mapped {
				mapped++
			}
		}
		log.Printf("firmupd: %s: %d shards (%d mmap-backed)", path, len(shards), mapped)
	}
	return &serve.Corpus{Name: path, Sealed: sc, LoadedAt: time.Now()}, nil
}
