package firmup_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"firmup"
	"firmup/internal/corpus"
	"firmup/internal/uir"
)

// sealedScenario analyzes every image of a generated corpus under one
// live session and seals it, returning both forms plus the raw query
// bytes for the given CVE so the two paths can be compared.
type sealedScenario struct {
	analyzer *firmup.Analyzer
	live     []*firmup.Image
	sealed   *firmup.SealedCorpus
}

func buildSealedScenario(t *testing.T, sc corpus.Scale) *sealedScenario {
	t.Helper()
	c, err := corpus.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	a := firmup.NewAnalyzer(nil)
	s := &sealedScenario{analyzer: a}
	for _, bi := range c.Images {
		img, err := a.OpenImage(bi.Image.Pack(true))
		if err != nil {
			t.Fatal(err)
		}
		s.live = append(s.live, img)
	}
	s.sealed, err = a.Seal(s.live...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// queryBytesFor compiles the analyst-side query executable for one CVE.
func queryBytesFor(t *testing.T, cve *corpus.CVE, arch uir.Arch) []byte {
	t.Helper()
	_, qf, err := corpus.QueryExe(cve.Package, cve.QueryVersion, arch)
	if err != nil {
		t.Fatal(err)
	}
	return qf.Bytes()
}

// TestSealedEquivalence is the tentpole soundness test: over randomized
// corpora, a sealed corpus must answer every search identically to the
// live session it was sealed from — findings, examined counts and step
// histograms deep-equal, across option variants including the
// exhaustive (prefilter-off) path.
func TestSealedEquivalence(t *testing.T) {
	queries := []struct {
		cveID string
		arch  uir.Arch
	}{
		{"CVE-2014-4877", uir.ArchMIPS32},
		{"CVE-2013-1944", uir.ArchARM32},
	}
	for _, seed := range []uint64{1, 9} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := buildSealedScenario(t, corpus.Scale{DevicesPerVendor: 2, MaxReleases: 2, Seed: seed})
			for _, q := range queries {
				cve := corpus.CVEByID(q.cveID)
				if cve == nil {
					t.Fatalf("unknown CVE %s", q.cveID)
				}
				qb := queryBytesFor(t, cve, q.arch)
				// The live query interns novel strands into the (still
				// mutable) session after sealing; the sealed query runs
				// under a request-private overlay. Results must agree.
				liveQ, err := s.analyzer.LoadQueryExecutable(qb)
				if err != nil {
					t.Fatal(err)
				}
				sealedQ, err := s.sealed.AnalyzeQuery(qb)
				if err != nil {
					t.Fatal(err)
				}
				opts := []*firmup.Options{
					nil,
					{MinScore: 3, MinRatio: 0.2},
					{Exhaustive: true},
				}
				total := 0
				for oi, opt := range opts {
					for i, img := range s.live {
						liveRes, err := s.analyzer.SearchImageDetailed(liveQ, cve.Procedure, img, opt)
						if err != nil {
							t.Fatal(err)
						}
						sealedRes, err := s.sealed.SearchImageDetailed(sealedQ, cve.Procedure, s.sealed.Images()[i], opt)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(liveRes, sealedRes) {
							t.Errorf("%s opt[%d] image %d: sealed result diverges:\nlive:   %+v\nsealed: %+v",
								cve.ID, oi, i, liveRes, sealedRes)
						}
						total += len(liveRes.Findings)
					}
				}
				if total == 0 {
					t.Errorf("%s: no findings in any image under any options; equivalence vacuous", cve.ID)
				}
			}
		})
	}
}

// TestSealedTracedEquivalence pins the strongest form of equivalence:
// the full game course against a single target is step-for-step
// identical between the live and sealed paths.
func TestSealedTracedEquivalence(t *testing.T) {
	s := buildSealedScenario(t, corpus.DefaultScale())
	cve := corpus.CVEByID("CVE-2014-4877")
	qb := queryBytesFor(t, cve, uir.ArchMIPS32)
	liveQ, err := s.analyzer.LoadQueryExecutable(qb)
	if err != nil {
		t.Fatal(err)
	}
	sealedQ, err := s.sealed.AnalyzeQuery(qb)
	if err != nil {
		t.Fatal(err)
	}
	compared := 0
	for i, img := range s.live {
		findings, err := s.analyzer.SearchImage(liveQ, cve.Procedure, img, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			var liveT *firmup.Executable
			for _, e := range img.Exes {
				if e.Path == f.ExePath {
					liveT = e
				}
			}
			sealedT := s.sealed.Images()[i].Executable(f.ExePath)
			if liveT == nil || sealedT == nil {
				t.Fatalf("finding in %s but executable missing from an image form", f.ExePath)
			}
			lf, lt, err := s.analyzer.MatchProcedureTraced(liveQ, cve.Procedure, liveT, nil)
			if err != nil {
				t.Fatal(err)
			}
			sf, st, err := s.sealed.MatchProcedureTraced(sealedQ, cve.Procedure, sealedT, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(lf, sf) {
				t.Errorf("image %d %s: finding diverges:\nlive:   %+v\nsealed: %+v", i, f.ExePath, lf, sf)
			}
			if !reflect.DeepEqual(lt, st) {
				t.Errorf("image %d %s: game trace diverges:\nlive:   %+v\nsealed: %+v", i, f.ExePath, lt, st)
			}
			compared++
		}
	}
	if compared == 0 {
		t.Fatal("no findings to trace; equivalence vacuous")
	}
}

// TestSealedConcurrentReaders hammers one sealed corpus from many
// goroutines, each running its own query analysis and corpus-wide
// search; every result must equal the serial baseline. Run under -race
// this doubles as the proof that the query path performs no writes to
// shared corpus state.
func TestSealedConcurrentReaders(t *testing.T) {
	s := buildSealedScenario(t, corpus.DefaultScale())
	cve := corpus.CVEByID("CVE-2014-4877")
	qb := queryBytesFor(t, cve, uir.ArchMIPS32)

	baseQ, err := s.sealed.AnalyzeQuery(qb)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := s.sealed.SearchAll(baseQ, cve.Procedure, nil)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 8
	const iters = 3
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q, err := s.sealed.AnalyzeQuery(qb)
				if err != nil {
					errs <- err
					return
				}
				got, err := s.sealed.SearchAll(q, cve.Procedure, nil)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, baseline) {
					errs <- fmt.Errorf("concurrent reader diverged from baseline")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSealedCorpusSaveLoadRoundTrip serializes a sealed corpus to the
// FWCORP artifact and reloads it with no live session; the loaded
// corpus must carry identical metadata and answer searches identically.
func TestSealedCorpusSaveLoadRoundTrip(t *testing.T) {
	s := buildSealedScenario(t, corpus.DefaultScale())
	blob, err := s.sealed.Save()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := firmup.LoadSealedCorpus(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.UniqueStrands(), s.sealed.UniqueStrands(); got != want {
		t.Errorf("unique strands: loaded %d, sealed %d", got, want)
	}
	if got, want := loaded.Executables(), s.sealed.Executables(); got != want {
		t.Errorf("executables: loaded %d, sealed %d", got, want)
	}
	if got, want := len(loaded.Images()), len(s.sealed.Images()); got != want {
		t.Fatalf("images: loaded %d, sealed %d", got, want)
	}
	for i, im := range s.sealed.Images() {
		lm := loaded.Images()[i]
		if lm.Vendor != im.Vendor || lm.Device != im.Device || lm.Version != im.Version {
			t.Errorf("image %d identity: loaded %s/%s/%s, sealed %s/%s/%s",
				i, lm.Vendor, lm.Device, lm.Version, im.Vendor, im.Device, im.Version)
		}
		if got, want := lm.IndexedStrands(), im.IndexedStrands(); got != want {
			t.Errorf("image %d indexed strands: loaded %d, sealed %d", i, got, want)
		}
		if got, want := len(lm.Skipped), len(im.Skipped); got != want {
			t.Errorf("image %d skipped: loaded %d, sealed %d", i, got, want)
		}
	}

	cve := corpus.CVEByID("CVE-2014-4877")
	qb := queryBytesFor(t, cve, uir.ArchMIPS32)
	sq, err := s.sealed.AnalyzeQuery(qb)
	if err != nil {
		t.Fatal(err)
	}
	lq, err := loaded.AnalyzeQuery(qb)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.sealed.SearchAll(sq, cve.Procedure, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.SearchAll(lq, cve.Procedure, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("loaded corpus search diverges:\nsealed: %+v\nloaded: %+v", want, got)
	}
}

// TestSealedCorpusCorruption flips bits across a saved artifact; every
// damaged form must fail to load with an error wrapping
// ErrSnapshotCorrupt, never a panic or a silently wrong corpus.
func TestSealedCorpusCorruption(t *testing.T) {
	s := buildSealedScenario(t, corpus.DefaultScale())
	blob, err := s.sealed.Save()
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(blob); off += 211 {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x40
		if _, err := firmup.LoadSealedCorpus(bad); err == nil {
			t.Errorf("bit flip at offset %d loaded successfully", off)
		} else if !errors.Is(err, firmup.ErrSnapshotCorrupt) {
			t.Errorf("bit flip at offset %d: error does not wrap ErrSnapshotCorrupt: %v", off, err)
		}
	}
	for _, n := range []int{0, 4, len(blob) / 2, len(blob) - 1} {
		if _, err := firmup.LoadSealedCorpus(blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes loaded successfully", n)
		}
	}
}

// TestSealForeignSessionRejected pins the Seal precondition: an image
// analyzed under a different session has incomparable dense IDs and
// must be rejected, not silently sealed.
func TestSealForeignSessionRejected(t *testing.T) {
	imgBytes, _, _ := buildScenario(t)
	a := firmup.NewAnalyzer(nil)
	b := firmup.NewAnalyzer(nil)
	foreign, err := b.OpenImage(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Seal(foreign); err == nil {
		t.Fatal("sealing a foreign-session image must fail")
	}
}

// TestSealedUnknownProcedure mirrors the live error contract.
func TestSealedUnknownProcedure(t *testing.T) {
	imgBytes, queryBytes, _ := buildScenario(t)
	a := firmup.NewAnalyzer(nil)
	img, err := a.OpenImage(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := a.Seal(img)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sc.AnalyzeQuery(queryBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.SearchAll(q, "no_such_procedure", nil); err == nil {
		t.Error("unknown procedure must fail")
	}
	if _, err := sc.AnalyzeQuery([]byte("garbage")); err == nil {
		t.Error("garbage query must fail")
	}
}
