package firmup

import (
	"errors"
	"fmt"
	"sort"

	"firmup/internal/corpusindex"
	"firmup/internal/sim"
	"firmup/internal/snapshot"
	"firmup/internal/strand"
	"firmup/internal/telemetry"
	"firmup/internal/uir"
)

// ErrSnapshotCorrupt reports that a snapshot failed to decode; it is
// firmup's re-export of snapshot.ErrCorrupt so callers can classify
// LoadImage failures without importing the internal package.
var ErrSnapshotCorrupt = snapshot.ErrCorrupt

// SaveImage serializes an analyzed image into the versioned,
// checksummed snapshot format, so a later session can re-attach it with
// LoadImage instead of re-running the analysis pipeline. The image must
// have been analyzed under this session: the snapshot embeds the
// session's strand vocabulary (dense ID → hash) that the image's
// per-procedure ID sets and inverted index are expressed in.
func (a *Analyzer) SaveImage(img *Image) ([]byte, error) {
	var saveSpan telemetry.Span
	if a.met != nil {
		saveSpan = a.met.snapSave.Start()
	}
	m := &snapshot.Image{
		Vendor:   img.Vendor,
		Device:   img.Device,
		Version:  img.Version,
		Interner: a.interner.Hashes(),
	}
	for _, s := range img.Skipped {
		m.Skipped = append(m.Skipped, snapshot.Skip{Path: s.Path, Err: s.Err.Error()})
	}
	for _, e := range img.Exes {
		if e.exe.Session() != strand.Interner(a.interner) {
			return nil, fmt.Errorf("firmup: SaveImage: executable %s was not analyzed under this session", e.Path)
		}
		m.Exes = append(m.Exes, exeToModel(e.Path, e.exe))
	}
	if img.index != nil {
		rows := img.index.Rows()
		m.Index = make([]snapshot.IndexRow, len(rows))
		for i, r := range rows {
			m.Index[i] = snapshot.IndexRow{ID: r.ID, Posts: postsToModel(r.Posts)}
		}
	}
	blob, err := snapshot.Encode(m)
	if a.met != nil && err == nil {
		a.met.snapSaveBytes.Add(int64(len(blob)))
		saveSpan.End()
	}
	return blob, err
}

func postsToModel(ps []corpusindex.Posting) []snapshot.Posting {
	out := make([]snapshot.Posting, len(ps))
	for i, p := range ps {
		out[i] = snapshot.Posting{Exe: p.Exe, Proc: p.Proc}
	}
	return out
}

// LoadImage re-attaches a snapshot produced by SaveImage to this
// session, skipping the unpack → recover → lift → strand pipeline. The
// saved vocabulary is re-interned into the session: when the session's
// ID space already agrees (e.g. a fresh session), the saved dense-ID
// sets and inverted index load verbatim; otherwise every set is
// remapped to the session's IDs and the index is rebuilt, so the
// prefilter soundness invariant (indexed and exhaustive searches return
// identical findings) holds either way. Unreadable input fails with an
// error wrapping ErrSnapshotCorrupt; see OpenImageWithSnapshot for the
// fall-back-to-analysis path.
func (a *Analyzer) LoadImage(data []byte) (*Image, error) {
	var loadSpan telemetry.Span
	if a.met != nil {
		loadSpan = a.met.snapLoad.Start()
	}
	m, err := snapshot.Decode(data)
	if err != nil {
		return nil, err
	}
	// Re-intern the saved vocabulary. remap[oldID] is this session's
	// dense ID for the same 64-bit hash; on a session whose ID space
	// agrees (identity) the saved sets and index are valid verbatim.
	remap := make([]uint32, len(m.Interner))
	identity := true
	for i, h := range m.Interner {
		id := a.interner.Intern(h)
		remap[i] = id
		if id != uint32(i) {
			identity = false
		}
	}
	out := &Image{Vendor: m.Vendor, Device: m.Device, Version: m.Version}
	for _, s := range m.Skipped {
		out.Skipped = append(out.Skipped, SkipReason{Path: s.Path, Err: errors.New(s.Err)})
	}
	exes := make([]*sim.Exe, 0, len(m.Exes))
	for _, se := range m.Exes {
		procs := make([]*sim.Proc, len(se.Procs))
		for pi := range se.Procs {
			procs[pi] = loadProc(&se.Procs[pi], m.Interner, remap, identity, a.interner)
		}
		for i, p := range procs {
			for _, c := range p.Calls {
				procs[c].CalledBy = append(procs[c].CalledBy, i)
			}
		}
		e := sim.FromProcsSession(se.Path, procs, a.interner)
		e.Arch = uir.Arch(se.Arch)
		e.Stripped = se.Stripped
		exes = append(exes, e)
		out.Exes = append(out.Exes, &Executable{Path: se.Path, exe: e})
	}
	if a.opt.indexed() {
		if identity && m.Index != nil {
			rows := make([]corpusindex.Row, len(m.Index))
			for i, r := range m.Index {
				rows[i] = corpusindex.Row{ID: r.ID, Posts: postsFromModel(r.Posts)}
			}
			out.index = corpusindex.RestoreIndex(a.interner, exes, rows)
		} else {
			out.index = corpusindex.NewIndex(a.interner)
			for _, e := range exes {
				out.index.Add(e)
			}
		}
		out.index.SetTelemetry(a.idxTel())
	}
	if a.met != nil {
		a.met.snapLoadBytes.Add(int64(len(data)))
		loadSpan.End()
	}
	return out, nil
}

func postsFromModel(ps []snapshot.Posting) []corpusindex.Posting {
	out := make([]corpusindex.Posting, len(ps))
	for i, p := range ps {
		out[i] = corpusindex.Posting{Exe: p.Exe, Proc: p.Proc}
	}
	return out
}

// loadProc rebuilds one procedure from its serialized form: hashes are
// recovered through the saved vocabulary and dense IDs are remapped
// into the loading session's ID space.
func loadProc(sp *snapshot.Proc, vocab []uint64, remap []uint32, identity bool, it *corpusindex.Interner) *sim.Proc {
	var ids []uint32
	hashes := make([]uint64, len(sp.IDs))
	if identity {
		ids = append([]uint32(nil), sp.IDs...)
	} else {
		ids = make([]uint32, len(sp.IDs))
	}
	for k, oid := range sp.IDs {
		hashes[k] = vocab[oid]
		if !identity {
			ids[k] = remap[oid]
		}
	}
	// Set invariants: Hashes and IDs are each sorted ascending. The
	// saved IDs are strictly increasing, but neither the recovered
	// hashes nor the remapped IDs inherit that order.
	sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
	if !identity {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	p := &sim.Proc{
		Name:       sp.Name,
		Addr:       sp.Addr,
		Exported:   sp.Exported,
		Set:        strand.Set{Hashes: hashes, IDs: ids, It: it},
		Markers:    sp.Markers,
		BlockCount: sp.BlockCount,
		EdgeCount:  sp.EdgeCount,
		InstCount:  sp.InstCount,
	}
	for _, c := range sp.Calls {
		p.Calls = append(p.Calls, int(c))
	}
	return p
}

// SnapshotSkipPath is the SkipReason.Path under which
// OpenImageWithSnapshot surfaces a snapshot that failed to load before
// falling back to full analysis.
const SnapshotSkipPath = "snapshot"

// OpenImageWithSnapshot opens an image, preferring its analysis
// snapshot: when snap decodes cleanly the pipeline is skipped entirely
// and the image is served from the snapshot; when snap is nil or
// unreadable (truncated, bit-flipped, version-skewed — anything
// wrapping ErrSnapshotCorrupt), the raw image bytes are re-analyzed in
// full and the snapshot failure is surfaced as a SkipReason with path
// SnapshotSkipPath rather than silently ignored.
func (a *Analyzer) OpenImageWithSnapshot(imageData, snap []byte) (*Image, error) {
	if snap != nil {
		img, err := a.LoadImage(snap)
		if err == nil {
			return img, nil
		}
		full, ferr := a.OpenImage(imageData)
		if full != nil {
			full.Skipped = append([]SkipReason{{Path: SnapshotSkipPath, Err: err}}, full.Skipped...)
		}
		return full, ferr
	}
	return a.OpenImage(imageData)
}

// SaveImage serializes an image analyzed under the package's default
// session (see Analyzer.SaveImage).
func SaveImage(img *Image) ([]byte, error) {
	return defaultAnalyzer().SaveImage(img)
}

// LoadImage re-attaches a snapshot under the package's default session
// (see Analyzer.LoadImage).
func LoadImage(data []byte) (*Image, error) {
	return defaultAnalyzer().LoadImage(data)
}

// OpenImageWithSnapshot opens an image under the package's default
// session, preferring its snapshot (see Analyzer.OpenImageWithSnapshot).
func OpenImageWithSnapshot(imageData, snap []byte) (*Image, error) {
	return defaultAnalyzer().OpenImageWithSnapshot(imageData, snap)
}
