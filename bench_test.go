// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, regenerating the corresponding result over the synthetic
// corpus. Run with:
//
//	go test -bench=. -benchmem
//
// Shape targets (see EXPERIMENTS.md for paper-vs-measured):
//
//	BenchmarkTable2CVEHunt       — Table 2: confirmed findings per CVE
//	BenchmarkFig6BinDiff         — Fig. 6: FirmUp vs graph-based matching
//	BenchmarkFig8GitZ            — Fig. 8: FirmUp vs procedure-centric top-1
//	BenchmarkFig9GameSteps       — Fig. 9: correct matches by game steps + ablation
//	BenchmarkTable1GameTrace     — Table 1: one game course
//	BenchmarkFig1Divergence      — Fig. 1/3: syntactic gap vs strand overlap
//	BenchmarkPipeline*           — per-stage throughput (lift, strands, game)
package firmup_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"firmup"
	"firmup/internal/cfg"
	"firmup/internal/compiler"
	"firmup/internal/core"
	"firmup/internal/corpus"
	"firmup/internal/eval"
	"firmup/internal/isa"
	_ "firmup/internal/isa/arm"
	_ "firmup/internal/isa/mips"
	_ "firmup/internal/isa/ppc"
	_ "firmup/internal/isa/x86"
	"firmup/internal/obj"
	"firmup/internal/sim"
	"firmup/internal/strand"
	"firmup/internal/uir"
)

var (
	benchOnce sync.Once
	benchEnv  *eval.Env
	benchErr  error
)

func benchSetup(b *testing.B) *eval.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = eval.Prepare(corpus.DefaultScale())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkTable2CVEHunt regenerates Table 2: the full wild CVE hunt.
func BenchmarkTable2CVEHunt(b *testing.B) {
	env := benchSetup(b)
	var res *eval.Table2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.Table2(env, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	confirmed, latest := res.TotalConfirmed()
	b.ReportMetric(float64(confirmed), "confirmed")
	b.ReportMetric(float64(latest), "latest-devices")
	if b.N == 1 {
		fmt.Println(res.Format())
	}
}

// BenchmarkFig6BinDiff regenerates Fig. 6: labeled FirmUp vs BinDiff.
func BenchmarkFig6BinDiff(b *testing.B) {
	env := benchSetup(b)
	var res *eval.CompareResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.CompareBinDiff(env, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fuP, fuFP, fuFN, blP, blFP, blFN := res.Rates()
	b.ReportMetric(100*float64(fuP)/float64(fuP+fuFP+fuFN), "firmup-%P")
	b.ReportMetric(100*float64(blP)/float64(blP+blFP+blFN), "bindiff-%P")
	if b.N == 1 {
		fmt.Println(res.Format())
	}
}

// BenchmarkFig8GitZ regenerates Fig. 8: labeled FirmUp vs GitZ top-1.
func BenchmarkFig8GitZ(b *testing.B) {
	env := benchSetup(b)
	var res *eval.CompareResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.CompareGitZ(env, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fuP, fuFP, fuFN, blP, blFP, blFN := res.Rates()
	b.ReportMetric(100*float64(fuFP+fuFN)/float64(fuP+fuFP+fuFN), "firmup-%false")
	b.ReportMetric(100*float64(blFP+blFN)/float64(blP+blFP+blFN), "gitz-%false")
	if b.N == 1 {
		fmt.Println(res.Format())
	}
}

// BenchmarkFig9GameSteps regenerates Fig. 9: the game-step histogram and
// the no-game ablation.
func BenchmarkFig9GameSteps(b *testing.B) {
	env := benchSetup(b)
	var res *eval.CompareResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.CompareGitZ(env, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	buckets := eval.Fig9Buckets(res.StepsHistogram)
	oneStep := buckets[0].Count
	multi := 0
	for _, bk := range buckets[1:] {
		multi += bk.Count
	}
	b.ReportMetric(float64(oneStep), "one-step")
	b.ReportMetric(float64(multi), "multi-step")
	b.ReportMetric(float64(res.NoGameP), "ablation-P")
	if b.N == 1 {
		fmt.Println(eval.FormatFig9(res))
	}
}

// BenchmarkTable1GameTrace regenerates Table 1: one full game course.
func BenchmarkTable1GameTrace(b *testing.B) {
	env := benchSetup(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = eval.GameTrace(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N == 1 {
		fmt.Println(out)
	}
}

// BenchmarkFig1Divergence regenerates the Fig. 1/3 measurement: same
// procedure, two tool chains — instruction overlap vs strand overlap.
func BenchmarkFig1Divergence(b *testing.B) {
	src, err := corpus.PackageSource("wget", "1.15")
	if err != nil {
		b.Fatal(err)
	}
	build := func(prof compiler.Profile, opt isa.Options) strand.Set {
		pkg, err := compiler.CompileToMIR(src, prof)
		if err != nil {
			b.Fatal(err)
		}
		be, _ := isa.ByArch(uir.ArchMIPS32)
		art, err := be.Generate(pkg, opt)
		if err != nil {
			b.Fatal(err)
		}
		f := obj.FromArtifact(art)
		rec, err := cfg.Recover(f)
		if err != nil {
			b.Fatal(err)
		}
		p := rec.Proc("ftp_retrieve_glob")
		return strand.FromBlocks(p.Blocks, &strand.Options{ABI: be.ABI(), Sections: f.Map()})
	}
	features := map[string]bool{"OPIE": true, "SSL": true, "COOKIES": true, "IPV6": true}
	var shared, qsize int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := build(compiler.DefaultQueryProfile(uir.ArchMIPS32),
			isa.Options{TextBase: 0x400000, RegSeed: 1, SchedSeed: 1, MulByShift: true})
		c := build(compiler.Profile{OptLevel: 1, Features: features},
			isa.Options{TextBase: 0x80001000, RegSeed: 77, SchedSeed: 13, ShuffleProcs: true})
		shared, qsize = a.Intersect(c), a.Size()
	}
	b.StopTimer()
	b.ReportMetric(100*float64(shared)/float64(qsize), "%strands-shared")
}

// --- pipeline-stage micro-benchmarks ---

func benchUnit(b *testing.B) (*eval.Env, *sim.Exe, int, *sim.Exe) {
	env := benchSetup(b)
	q, err := env.Query("wget", "1.15", uir.ArchMIPS32)
	if err != nil {
		b.Fatal(err)
	}
	qi := q.ProcByName("ftp_retrieve_glob")
	for _, u := range env.Units {
		if u.Pkg == "wget" && u.Arch == uir.ArchMIPS32 {
			return env, q, qi, u.Exe
		}
	}
	b.Fatal("no MIPS wget unit")
	return nil, nil, 0, nil
}

// BenchmarkPipelineRecoverAndLift measures stripped-binary procedure
// recovery plus lifting for one executable.
func BenchmarkPipelineRecoverAndLift(b *testing.B) {
	env := benchSetup(b)
	var f *obj.File
	for _, u := range env.Units {
		if u.Pkg == "wget" {
			f = u.File
		}
	}
	if f == nil {
		b.Fatal("no wget unit")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Recover(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineStrands measures strand extraction for one
// executable's recovered procedures.
func BenchmarkPipelineStrands(b *testing.B) {
	env := benchSetup(b)
	var f *obj.File
	for _, u := range env.Units {
		if u.Pkg == "wget" {
			f = u.File
		}
	}
	rec, err := cfg.Recover(f)
	if err != nil {
		b.Fatal(err)
	}
	be, _ := isa.ByArch(rec.Arch)
	opt := &strand.Options{ABI: be.ABI(), Sections: f.Map()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range rec.Procs {
			strand.FromBlocks(p.Blocks, opt)
		}
	}
}

// BenchmarkPipelineGame measures one back-and-forth game.
func BenchmarkPipelineGame(b *testing.B) {
	_, q, qi, t := benchUnit(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Match(q, qi, t, nil)
	}
}

// BenchmarkMatchGame compares the memoized engine against the reference
// on the full game workload of one query executable (every procedure
// with a meaningful strand set against one target), with allocs/op —
// the per-game similarity cache and pooled arenas are exactly what this
// tracks.
func BenchmarkMatchGame(b *testing.B) {
	_, q, _, t := benchUnit(b)
	var qis []int
	for qi, qp := range q.Procs {
		if qp.Set.Size() >= 3 {
			qis = append(qis, qi)
		}
	}
	for _, eng := range []struct {
		name string
		run  func(q *sim.Exe, qi int, t *sim.Exe, opt *core.Options) core.Result
	}{
		{"memoized", core.Match},
		{"reference", core.MatchReference},
	} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, qi := range qis {
					eng.run(q, qi, t, nil)
				}
			}
			b.ReportMetric(float64(len(qis)), "games/op")
		})
	}
}

// BenchmarkSearchMemoized measures the game-heavy search path end to end
// with allocs/op: one query procedure against every same-arch target,
// through the pooled matcher arenas the search workers share.
func BenchmarkSearchMemoized(b *testing.B) {
	env, q, qi, _ := benchUnit(b)
	var targets []*sim.Exe
	for _, u := range env.Units {
		if u.Arch == uir.ArchMIPS32 {
			targets = append(targets, u.Exe)
		}
	}
	opt := eval.DefaultSearch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Search(q, qi, targets, opt)
	}
	b.ReportMetric(float64(len(targets)), "targets/op")
}

// BenchmarkPipelinePairwise measures one index-accelerated best-match
// query (the inner operation of the game).
func BenchmarkPipelinePairwise(b *testing.B) {
	_, q, qi, t := benchUnit(b)
	set := q.Procs[qi].Set
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.BestMatch(set, nil)
	}
}

// BenchmarkPipelineImageSearch measures a whole-image search through the
// public API path (game against every executable of one image).
func BenchmarkPipelineImageSearch(b *testing.B) {
	env, q, qi, _ := benchUnit(b)
	var targets []*sim.Exe
	for _, u := range env.Units {
		if u.Arch == uir.ArchMIPS32 {
			targets = append(targets, u.Exe)
		}
	}
	opt := eval.DefaultSearch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Search(q, qi, targets, opt)
	}
}

// --- ablation benchmarks for the design choices DESIGN.md calls out ---

// BenchmarkAblationOffsetElim measures cross-tool-chain best-match
// accuracy with and without offset elimination. Without it, code/data
// addresses leak into strands and matching collapses across layouts.
func BenchmarkAblationOffsetElim(b *testing.B) {
	src, err := corpus.PackageSource("wget", "1.15")
	if err != nil {
		b.Fatal(err)
	}
	type built struct {
		rec *cfg.Recovered
		f   *obj.File
	}
	build := func(prof compiler.Profile, opt isa.Options) built {
		pkg, err := compiler.CompileToMIR(src, prof)
		if err != nil {
			b.Fatal(err)
		}
		be, _ := isa.ByArch(uir.ArchMIPS32)
		art, err := be.Generate(pkg, opt)
		if err != nil {
			b.Fatal(err)
		}
		f := obj.FromArtifact(art)
		rec, err := cfg.Recover(f)
		if err != nil {
			b.Fatal(err)
		}
		return built{rec, f}
	}
	features := map[string]bool{"OPIE": true, "SSL": true, "COOKIES": true, "IPV6": true}
	qa := build(compiler.DefaultQueryProfile(uir.ArchMIPS32),
		isa.Options{TextBase: 0x400000, RegSeed: 1, SchedSeed: 1, MulByShift: true})
	tb := build(compiler.Profile{OptLevel: 1, Features: features},
		isa.Options{TextBase: 0x80001000, RegSeed: 77, SchedSeed: 13, ShuffleProcs: true})

	// Metric: the average fraction of a procedure's strands shared with
	// its true counterpart across the tool chains (the signal Sim feeds
	// on). Offset elimination is what keeps data-referencing strands
	// comparable across different layout bases.
	truePairOverlap := func(withElim bool) float64 {
		be, _ := isa.ByArch(uir.ArchMIPS32)
		mkSets := func(bu built) map[string]strand.Set {
			opt := &strand.Options{ABI: be.ABI()}
			if withElim {
				opt.Sections = bu.f.Map()
			}
			out := map[string]strand.Set{}
			for _, p := range bu.rec.Procs {
				out[p.Name] = strand.FromBlocks(p.Blocks, opt)
			}
			return out
		}
		qs := mkSets(qa)
		ts := mkSets(tb)
		var sum float64
		var n int
		for name, q := range qs {
			t, ok := ts[name]
			if !ok || q.Size() < 3 {
				continue
			}
			sum += float64(q.Intersect(t)) / float64(q.Size())
			n++
		}
		return 100 * sum / float64(n)
	}
	var with, without float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with = truePairOverlap(true)
		without = truePairOverlap(false)
	}
	b.StopTimer()
	b.ReportMetric(with, "with-%overlap")
	b.ReportMetric(without, "without-%overlap")
}

// BenchmarkAblationMarkers measures Table 2 false positives with and
// without the constant-marker confirmation step.
func BenchmarkAblationMarkers(b *testing.B) {
	env := benchSetup(b)
	run := func(markerBar float64) (confirmed, fps int) {
		opt := eval.DefaultSearch()
		opt.MarkerMinOverlap = markerBar
		res, err := eval.Table2(env, opt)
		if err != nil {
			b.Fatal(err)
		}
		c, _ := res.TotalConfirmed()
		for _, row := range res.Rows {
			fps += row.FPs
		}
		return c, fps
	}
	var cWith, fWith, cWithout, fWithout int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cWith, fWith = run(0)        // default 0.3
		cWithout, fWithout = run(-1) // disabled
	}
	b.StopTimer()
	b.ReportMetric(float64(cWith), "with-confirmed")
	b.ReportMetric(float64(fWith), "with-FPs")
	b.ReportMetric(float64(cWithout), "without-confirmed")
	b.ReportMetric(float64(fWithout), "without-FPs")
}

// --- analyzer-session benchmarks: parallel analysis & indexed search ---

// benchImageScenario packs the wget firmware image and compiles the
// matching query, as bytes (the external-user view).
func benchImageScenario(b *testing.B) (imgBytes, queryBytes []byte) {
	b.Helper()
	c, err := corpus.Build(corpus.DefaultScale())
	if err != nil {
		b.Fatal(err)
	}
	var target *corpus.BuiltImage
	var arch uir.Arch
	for _, bi := range c.Images {
		for _, e := range bi.Exes {
			if e.Pkg == "wget" && e.PkgVersion == "1.15" {
				target = bi
				arch = e.Arch
			}
		}
	}
	if target == nil {
		b.Fatal("no wget 1.15 image in default corpus")
	}
	_, qf, err := corpus.QueryExe("wget", "1.15", arch)
	if err != nil {
		b.Fatal(err)
	}
	return target.Image.Pack(true), qf.Bytes()
}

// BenchmarkOpenImage measures whole-image analysis under the session
// worker pool, serial vs parallel.
func BenchmarkOpenImage(b *testing.B) {
	imgBytes, _ := benchImageScenario(b)
	workers := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := firmup.NewAnalyzer(&firmup.AnalyzerOptions{Workers: w})
				img, err := a.OpenImage(imgBytes)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(len(img.Exes)), "exes")
				}
			}
		})
	}
}

// BenchmarkSaveImage measures snapshot serialization of an analyzed
// image.
func BenchmarkSaveImage(b *testing.B) {
	imgBytes, _ := benchImageScenario(b)
	a := firmup.NewAnalyzer(nil)
	img, err := a.OpenImage(imgBytes)
	if err != nil {
		b.Fatal(err)
	}
	var blob []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err = a.SaveImage(img)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob)), "bytes")
}

// BenchmarkLoadSnapshot measures re-attaching a saved analysis to a
// fresh session — the analyze-once-query-many path. Compare against
// BenchmarkOpenImage/workers=1: loading skips unpack → recover → lift →
// strand extraction entirely and must come in far cheaper.
func BenchmarkLoadSnapshot(b *testing.B) {
	imgBytes, _ := benchImageScenario(b)
	a := firmup.NewAnalyzer(nil)
	img, err := a.OpenImage(imgBytes)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := a.SaveImage(img)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh session per iteration: the identity fast path a cold
		// process hits when serving an image from its sidecar.
		loaded, err := firmup.NewAnalyzer(nil).LoadImage(blob)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(loaded.Exes)), "exes")
		}
	}
}

// BenchmarkSearchImage measures a whole-image search with the
// corpus-index candidate prefilter vs exhaustive examination.
func BenchmarkSearchImage(b *testing.B) {
	imgBytes, queryBytes := benchImageScenario(b)
	a := firmup.NewAnalyzer(nil)
	img, err := a.OpenImage(imgBytes)
	if err != nil {
		b.Fatal(err)
	}
	q, err := a.LoadQueryExecutable(queryBytes)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opt  *firmup.Options
	}{
		{"indexed", nil},
		{"exhaustive", &firmup.Options{Exhaustive: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var res *firmup.SearchResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = firmup.SearchImageDetailed(q, "ftp_retrieve_glob", img, mode.opt)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Examined), "examined")
			b.ReportMetric(float64(len(res.Findings)), "findings")
		})
	}
}
