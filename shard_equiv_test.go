package firmup_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"firmup"
	"firmup/internal/corpus"
	"firmup/internal/uir"
)

// TestShardedCorpusEquivalence is the sharding soundness test: a
// sealed corpus split into any number of v2 shards and reopened
// mmap-backed must answer every search byte-identically to the in-RAM
// corpus it was written from — findings, examined counts and step
// histograms, across sequential, batched and exhaustive paths, and
// under concurrent readers (exercised with -race in CI).
func TestShardedCorpusEquivalence(t *testing.T) {
	s := buildSealedScenario(t, corpus.DefaultScale())
	cve := corpus.CVEByID("CVE-2014-4877")
	qb := queryBytesFor(t, cve, uir.ArchMIPS32)
	cve2 := corpus.CVEByID("CVE-2013-1944")
	qb2 := queryBytesFor(t, cve2, uir.ArchARM32)

	baseQ, err := s.sealed.AnalyzeQuery(qb)
	if err != nil {
		t.Fatal(err)
	}
	baseQ2, err := s.sealed.AnalyzeQuery(qb2)
	if err != nil {
		t.Fatal(err)
	}
	opts := []*firmup.Options{nil, {MinScore: 3, MinRatio: 0.2}, {Exhaustive: true}}
	type baseline struct {
		all   []firmup.ImageFindings
		batch [][]firmup.ImageFindings
	}
	var want []baseline
	total := 0
	for _, opt := range opts {
		all, err := s.sealed.SearchAll(baseQ, cve.Procedure, opt)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := s.sealed.SearchAllBatch([]firmup.BatchQuery{
			{Query: baseQ, Procedure: cve.Procedure},
			{Query: baseQ2, Procedure: cve2.Procedure},
		}, opt)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, baseline{all: all, batch: batch})
		for _, im := range all {
			total += len(im.Findings)
		}
	}
	if total == 0 {
		t.Fatal("no findings in the unsharded baseline; equivalence would be vacuous")
	}

	for _, nShards := range []int{1, 2, 7} {
		t.Run(fmt.Sprintf("shards=%d", nShards), func(t *testing.T) {
			dir := t.TempDir()
			paths, err := s.sealed.WriteShards(dir, nShards)
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) != nShards {
				t.Fatalf("WriteShards returned %d paths, want %d", len(paths), nShards)
			}
			sc, err := firmup.OpenSealedCorpusDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer sc.Close()
			if got := len(sc.Shards()); got != nShards {
				t.Errorf("Shards() reports %d shards, want %d", got, nShards)
			}
			if sc.Executables() != s.sealed.Executables() || sc.UniqueStrands() != s.sealed.UniqueStrands() {
				t.Errorf("corpus shape diverges: %d/%d executables, %d/%d strands",
					sc.Executables(), s.sealed.Executables(), sc.UniqueStrands(), s.sealed.UniqueStrands())
			}

			q, err := sc.AnalyzeQuery(qb)
			if err != nil {
				t.Fatal(err)
			}
			q2, err := sc.AnalyzeQuery(qb2)
			if err != nil {
				t.Fatal(err)
			}
			for oi, opt := range opts {
				all, err := sc.SearchAll(q, cve.Procedure, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(all, want[oi].all) {
					t.Errorf("opt[%d]: SearchAll diverges from unsharded corpus", oi)
				}
				batch, err := sc.SearchAllBatch([]firmup.BatchQuery{
					{Query: q, Procedure: cve.Procedure},
					{Query: q2, Procedure: cve2.Procedure},
				}, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(batch, want[oi].batch) {
					t.Errorf("opt[%d]: SearchAllBatch diverges from unsharded corpus", oi)
				}
				// Per-image detailed results pin the step histograms too.
				for i, img := range sc.Images() {
					res, err := sc.SearchImageDetailed(q, cve.Procedure, img, opt)
					if err != nil {
						t.Fatal(err)
					}
					baseRes, err := s.sealed.SearchImageDetailed(baseQ, cve.Procedure, s.sealed.Images()[i], opt)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(res, baseRes) {
						t.Errorf("opt[%d] image %d: detailed result diverges:\nsharded:   %+v\nunsharded: %+v",
							oi, i, res, baseRes)
					}
				}
			}

			// Concurrent readers race lazy materialization and the
			// first-touch CRC passes; every reader must still see the
			// baseline result exactly.
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			for r := 0; r < 8; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					opt := opts[r%len(opts)]
					all, err := sc.SearchAll(q, cve.Procedure, opt)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(all, want[r%len(opts)].all) {
						errs <- fmt.Errorf("reader %d: concurrent SearchAll diverges", r)
					}
				}(r)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestOpenSealedCorpusForms pins the OpenSealedCorpus dispatch: a v1
// artifact, a single-shard v2 file and a shard directory all open into
// equivalent corpora, and a multi-shard member opened as a lone file
// is rejected with a pointer to the directory form.
func TestOpenSealedCorpusForms(t *testing.T) {
	s := buildSealedScenario(t, corpus.DefaultScale())
	cve := corpus.CVEByID("CVE-2014-4877")
	qb := queryBytesFor(t, cve, uir.ArchMIPS32)
	baseQ, err := s.sealed.AnalyzeQuery(qb)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.sealed.SearchAll(baseQ, cve.Procedure, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	v1Path := filepath.Join(dir, "corpus.v1")
	blob, err := s.sealed.Save()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v1Path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	oneDir := filepath.Join(dir, "one")
	onePaths, err := s.sealed.WriteShards(oneDir, 1)
	if err != nil {
		t.Fatal(err)
	}
	manyDir := filepath.Join(dir, "many")
	manyPaths, err := s.sealed.WriteShards(manyDir, 3)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name, path string
	}{
		{"v1-file", v1Path},
		{"v2-single-file", onePaths[0]},
		{"v2-dir", manyDir},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := firmup.OpenSealedCorpus(tc.path)
			if err != nil {
				t.Fatal(err)
			}
			defer sc.Close()
			q, err := sc.AnalyzeQuery(qb)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sc.SearchAll(q, cve.Procedure, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Error("opened corpus answers differently from the sealed original")
			}
		})
	}

	if _, err := firmup.OpenSealedCorpus(manyPaths[1]); err == nil {
		t.Error("opening one shard of a 3-shard corpus as a file succeeded; want an error directing to the directory")
	}

	// A shard set with a member missing must be rejected at open.
	if err := os.Remove(manyPaths[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := firmup.OpenSealedCorpusDir(manyDir); err == nil {
		t.Error("opening an incomplete shard set succeeded")
	}
}
