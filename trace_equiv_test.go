package firmup_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"firmup"
	"firmup/internal/corpus"
	"firmup/internal/telemetry"
	"firmup/internal/uir"
)

// TestTraceEquivalence is the tracing soundness test: a request-scoped
// trace must be pure observation. Every search path — the live
// analyzer, the sealed in-RAM corpus, and a sharded mmap-backed corpus
// — must answer byte-identically with and without a live trace
// attached, across option variants, and the traced runs must actually
// record spans (so the equivalence is not vacuous).
func TestTraceEquivalence(t *testing.T) {
	s := buildSealedScenario(t, corpus.DefaultScale())
	cve := corpus.CVEByID("CVE-2014-4877")
	qb := queryBytesFor(t, cve, uir.ArchMIPS32)

	dir := t.TempDir()
	if _, err := s.sealed.WriteShards(dir, 3); err != nil {
		t.Fatal(err)
	}
	sharded, err := firmup.OpenSealedCorpusDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	variants := []firmup.Options{{}, {MinScore: 3, MinRatio: 0.2}, {Exhaustive: true}}
	spanNames := func(tr *telemetry.Trace) map[string]int {
		names := make(map[string]int)
		for _, sp := range tr.Snapshot().Spans {
			names[sp.Name]++
		}
		return names
	}

	// Live analyzer path: per-image detailed search.
	liveQ, err := s.analyzer.LoadQueryExecutable(qb)
	if err != nil {
		t.Fatal(err)
	}
	liveFindings := 0
	for vi := range variants {
		for i, img := range s.live {
			base := variants[vi]
			want, err := s.analyzer.SearchImageDetailed(liveQ, cve.Procedure, img, &base)
			if err != nil {
				t.Fatal(err)
			}
			tr := telemetry.NewTrace(telemetry.NewTraceID())
			traced := variants[vi]
			traced.Trace = tr
			got, err := s.analyzer.SearchImageDetailed(liveQ, cve.Procedure, img, &traced)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("live image %d variant %d: traced search diverges from untraced", i, vi)
			}
			if names := spanNames(tr); names["core.search"] == 0 {
				t.Errorf("live image %d variant %d: trace recorded no core.search span: %v", i, vi, names)
			}
			tr.Finish()
			tr.Free()
			liveFindings += len(want.Findings)
		}
	}
	if liveFindings == 0 {
		t.Fatal("live baseline found nothing; equivalence would be vacuous")
	}

	// Sealed corpora: the in-RAM corpus and the sharded store, over the
	// corpus-wide single and batched paths. The comparison is on the
	// JSON encoding, pinning byte-identical findings.
	for ci, sc := range []*firmup.SealedCorpus{s.sealed, sharded} {
		q, err := sc.AnalyzeQuery(qb)
		if err != nil {
			t.Fatal(err)
		}
		for vi := range variants {
			base := variants[vi]
			wantAll, err := sc.SearchAll(q, cve.Procedure, &base)
			if err != nil {
				t.Fatal(err)
			}
			wantBatch, err := sc.SearchAllBatch([]firmup.BatchQuery{{Query: q, Procedure: cve.Procedure}}, &base)
			if err != nil {
				t.Fatal(err)
			}

			tr := telemetry.NewTrace(telemetry.NewTraceID())
			traced := variants[vi]
			traced.Trace = tr
			root := tr.Start("request", 0)
			traced.TraceSpan = root.ID()
			gotAll, err := sc.SearchAll(q, cve.Procedure, &traced)
			if err != nil {
				t.Fatal(err)
			}
			gotBatch, err := sc.SearchAllBatch([]firmup.BatchQuery{{Query: q, Procedure: cve.Procedure}}, &traced)
			if err != nil {
				t.Fatal(err)
			}
			root.End()

			wantBlob, err := json.Marshal(wantAll)
			if err != nil {
				t.Fatal(err)
			}
			gotBlob, err := json.Marshal(gotAll)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotBlob) != string(wantBlob) {
				t.Errorf("corpus %d variant %d: traced SearchAll not byte-identical to untraced", ci, vi)
			}
			if !reflect.DeepEqual(gotBatch, wantBatch) {
				t.Errorf("corpus %d variant %d: traced SearchAllBatch diverges from untraced", ci, vi)
			}

			names := spanNames(tr)
			if names["core.search"] == 0 && names["core.search_batch"] == 0 {
				t.Errorf("corpus %d variant %d: trace recorded no search spans: %v", ci, vi, names)
			}
			if ci == 1 && names["corpus.shard"] == 0 {
				t.Errorf("sharded variant %d: trace lacks corpus.shard spans: %v", vi, names)
			}
			tr.Finish()
			tr.Free()
		}
	}
}
