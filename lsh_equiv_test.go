package firmup_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"firmup"
	"firmup/internal/corpus"
	"firmup/internal/eval"
	"firmup/internal/snapshot"
	"firmup/internal/uir"
)

// lshTestQueries are the CVE probes every LSH suite replays.
var lshTestQueries = []struct {
	cveID string
	arch  uir.Arch
}{
	{"CVE-2014-4877", uir.ArchMIPS32},
	{"CVE-2013-1944", uir.ArchARM32},
}

// TestLSHExactEquivalence is the exact-mode soundness suite: with
// Approx off, the MinHash/LSH tier only reorders probe sequence — the
// candidate set is still the exact prefilter's, so every corpus form
// that consults LSH buckets (sealed in-RAM, sharded v3 stores at two
// shard counts, and signature-less v2 shards that fall back to the
// plain exact path) must answer byte-identically to the live session
// baseline: findings, examined counts and step histograms deep-equal.
// Randomized over corpus seeds; CI runs it under -race.
func TestLSHExactEquivalence(t *testing.T) {
	opts := []*firmup.Options{nil, {MinScore: 3, MinRatio: 0.2}, {Exhaustive: true}}
	for _, seed := range []uint64{3, 11} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			s := buildSealedScenario(t, corpus.Scale{DevicesPerVendor: 2, MaxReleases: 2, Seed: seed})

			// The store-backed forms: v3 shards (signatures present) at two
			// shard counts, and v2 shards (no signatures, exact fallback).
			dir := t.TempDir()
			type form struct {
				name string
				sc   *firmup.SealedCorpus
			}
			forms := []form{{"sealed", s.sealed}}
			for _, nShards := range []int{2, 7} {
				d := filepath.Join(dir, fmt.Sprintf("v3-%d", nShards))
				if _, err := s.sealed.WriteShards(d, nShards); err != nil {
					t.Fatal(err)
				}
				sc, err := firmup.OpenSealedCorpusDir(d)
				if err != nil {
					t.Fatal(err)
				}
				defer sc.Close()
				forms = append(forms, form{fmt.Sprintf("store-v3-%d", nShards), sc})
			}
			noSigsDir := filepath.Join(dir, "v2-nosigs")
			if _, err := s.sealed.WriteShardsNoSigs(noSigsDir, 2); err != nil {
				t.Fatal(err)
			}
			noSigs, err := firmup.OpenSealedCorpusDir(noSigsDir)
			if err != nil {
				t.Fatal(err)
			}
			defer noSigs.Close()
			forms = append(forms, form{"store-v2-nosigs", noSigs})

			total := 0
			for _, q := range lshTestQueries {
				cve := corpus.CVEByID(q.cveID)
				if cve == nil {
					t.Fatalf("unknown CVE %s", q.cveID)
				}
				qb := queryBytesFor(t, cve, q.arch)
				// Live session baseline: the plain exact prefilter, no LSH.
				liveQ, err := s.analyzer.LoadQueryExecutable(qb)
				if err != nil {
					t.Fatal(err)
				}
				for oi, opt := range opts {
					var want []*firmup.SearchResult
					for _, img := range s.live {
						res, err := s.analyzer.SearchImageDetailed(liveQ, cve.Procedure, img, opt)
						if err != nil {
							t.Fatal(err)
						}
						want = append(want, res)
						total += len(res.Findings)
					}
					for _, f := range forms {
						fq, err := f.sc.AnalyzeQuery(qb)
						if err != nil {
							t.Fatal(err)
						}
						for i, img := range f.sc.Images() {
							got, err := f.sc.SearchImageDetailed(fq, cve.Procedure, img, opt)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(got, want[i]) {
								t.Errorf("%s %s opt[%d] image %d: diverges from live baseline:\nlive: %+v\ngot:  %+v",
									f.name, cve.ID, oi, i, want[i], got)
							}
						}
					}
				}
			}
			if total == 0 {
				t.Error("no findings under any options; equivalence vacuous")
			}
		})
	}
}

// TestLSHApproxSubset pins the approximate tier's one-sided error:
// with Approx on, band collisions gate the exact candidate set, so the
// examined count per image can never exceed exact mode's and every
// approximate finding must also be an exact finding, value for value.
// Exhaustive mode must ignore Approx entirely.
func TestLSHApproxSubset(t *testing.T) {
	s := buildSealedScenario(t, corpus.DefaultScale())
	shardDir := t.TempDir()
	if _, err := s.sealed.WriteShards(shardDir, 3); err != nil {
		t.Fatal(err)
	}
	store, err := firmup.OpenSealedCorpusDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	for _, form := range []struct {
		name string
		sc   *firmup.SealedCorpus
	}{{"sealed", s.sealed}, {"store", store}} {
		for _, q := range lshTestQueries {
			cve := corpus.CVEByID(q.cveID)
			qb := queryBytesFor(t, cve, q.arch)
			qe, err := form.sc.AnalyzeQuery(qb)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := form.sc.SearchAll(qe, cve.Procedure, nil)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := form.sc.SearchAll(qe, cve.Procedure, &firmup.Options{Approx: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(exact) != len(approx) {
				t.Fatalf("%s %s: image count diverges: %d vs %d", form.name, cve.ID, len(exact), len(approx))
			}
			for i := range exact {
				if approx[i].Examined > exact[i].Examined {
					t.Errorf("%s %s image %d: approx examined %d > exact %d — the band gate admitted a non-candidate",
						form.name, cve.ID, i, approx[i].Examined, exact[i].Examined)
				}
				set := make(map[firmup.Finding]bool, len(exact[i].Findings))
				for _, f := range exact[i].Findings {
					set[f] = true
				}
				for _, f := range approx[i].Findings {
					if !set[f] {
						t.Errorf("%s %s image %d: approx finding %+v absent from exact results",
							form.name, cve.ID, i, f)
					}
				}
			}
			// Exhaustive ignores every prefilter, approximate or exact.
			exh, err := form.sc.SearchAll(qe, cve.Procedure, &firmup.Options{Exhaustive: true})
			if err != nil {
				t.Fatal(err)
			}
			exhA, err := form.sc.SearchAll(qe, cve.Procedure, &firmup.Options{Exhaustive: true, Approx: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(exh, exhA) {
				t.Errorf("%s %s: Approx changed the exhaustive path", form.name, cve.ID)
			}
		}
	}
}

// TestApproxRecallFloor measures the approximate tier's recall against
// exact ground truth over the default corpus and both CVE queries,
// pooled, and enforces the documented 0.95 floor — the bound the -approx
// flag and serve's approx= parameter advertise. CI runs this as the
// recall gate.
func TestApproxRecallFloor(t *testing.T) {
	s := buildSealedScenario(t, corpus.DefaultScale())
	shardDir := t.TempDir()
	if _, err := s.sealed.WriteShards(shardDir, 4); err != nil {
		t.Fatal(err)
	}
	sc, err := firmup.OpenSealedCorpusDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	keys := func(res []firmup.ImageFindings) map[eval.FindingKey]bool {
		m := make(map[eval.FindingKey]bool)
		for i, img := range res {
			for _, f := range img.Findings {
				m[eval.FindingKey{Image: i, ExePath: f.ExePath, ProcAddr: f.ProcAddr}] = true
			}
		}
		return m
	}
	var rs eval.RecallStats
	for _, q := range lshTestQueries {
		cve := corpus.CVEByID(q.cveID)
		qb := queryBytesFor(t, cve, q.arch)
		qe, err := sc.AnalyzeQuery(qb)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := sc.SearchAll(qe, cve.Procedure, nil)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := sc.SearchAll(qe, cve.Procedure, &firmup.Options{Approx: true})
		if err != nil {
			t.Fatal(err)
		}
		rs.Observe(keys(exact), keys(approx))
	}
	if rs.Expected == 0 {
		t.Fatal("no exact findings; recall floor vacuous")
	}
	if got := rs.Recall(); got < 0.95 {
		t.Errorf("approximate recall %.3f (%d/%d) below the 0.95 floor", got, rs.Found, rs.Expected)
	} else {
		t.Logf("approximate recall %.3f (%d/%d findings)", got, rs.Found, rs.Expected)
	}
}

// TestOpenSealedCorpusDirMixed pins the mixed-generation diagnostic: a
// v1 artifact dropped into a shard directory must fail the directory
// open with a MixedCorpusError naming that file.
func TestOpenSealedCorpusDirMixed(t *testing.T) {
	s := buildSealedScenario(t, corpus.Scale{DevicesPerVendor: 1, MaxReleases: 1, Seed: 5})
	dir := t.TempDir()
	if _, err := s.sealed.WriteShards(dir, 2); err != nil {
		t.Fatal(err)
	}
	blob, err := s.sealed.Save()
	if err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "old-corpus.fwcorp")
	if err := os.WriteFile(stray, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = firmup.OpenSealedCorpusDir(dir)
	if err == nil {
		t.Fatal("opening a mixed v1/v2 directory succeeded")
	}
	var mixed *firmup.MixedCorpusError
	if !errors.As(err, &mixed) {
		t.Fatalf("error is %T (%v), want *MixedCorpusError", err, err)
	}
	if mixed.Path != stray {
		t.Errorf("MixedCorpusError.Path = %q, want %q", mixed.Path, stray)
	}
	if mixed.Dir != dir {
		t.Errorf("MixedCorpusError.Dir = %q, want %q", mixed.Dir, dir)
	}
	if mixed.Version != 1 {
		t.Errorf("MixedCorpusError.Version = %d, want 1", mixed.Version)
	}
}

// TestWriteShardsDeterminism pins two properties of the parallel shard
// writer: repeated runs are byte-identical (the worker pool cannot leak
// scheduling order into the artifacts), and the sigs/no-sigs variants
// emit the container versions they advertise.
func TestWriteShardsDeterminism(t *testing.T) {
	s := buildSealedScenario(t, corpus.Scale{DevicesPerVendor: 2, MaxReleases: 1, Seed: 7})
	dir := t.TempDir()
	runA, err := s.sealed.WriteShards(filepath.Join(dir, "a"), 5)
	if err != nil {
		t.Fatal(err)
	}
	runB, err := s.sealed.WriteShards(filepath.Join(dir, "b"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(runA) != 5 || len(runB) != 5 {
		t.Fatalf("WriteShards returned %d/%d paths, want 5", len(runA), len(runB))
	}
	for i := range runA {
		a, err := os.ReadFile(runA[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(runB[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("shard %d differs between two WriteShards runs", i)
		}
		if v, err := snapshot.CorpusVersion(a); err != nil || v != snapshot.CorpusFormatVersionV3 {
			t.Errorf("shard %d: version %d (err %v), want v%d", i, v, err, snapshot.CorpusFormatVersionV3)
		}
	}
	noSigs, err := s.sealed.WriteShardsNoSigs(filepath.Join(dir, "nosigs"), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range noSigs {
		blob, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if v, err := snapshot.CorpusVersion(blob); err != nil || v != snapshot.CorpusFormatVersionV2 {
			t.Errorf("no-sigs shard %d: version %d (err %v), want v%d", i, v, err, snapshot.CorpusFormatVersionV2)
		}
	}
}
