package firmup_test

import (
	"errors"
	"reflect"
	"testing"

	"firmup"
)

// searchDetailed runs the canonical wget query against the image.
func searchDetailed(t *testing.T, q *firmup.Executable, img *firmup.Image, opt *firmup.Options) *firmup.SearchResult {
	t.Helper()
	res, err := firmup.SearchImageDetailed(q, "ftp_retrieve_glob", img, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// A snapshot of the real scenario must round-trip: a session that loads
// it instead of analyzing the image answers the wget CVE query with
// byte-identical findings and histogram, through both the indexed and
// the exhaustive path.
func TestSnapshotScenarioRoundTrip(t *testing.T) {
	a, img, q := openScenario(t, nil)
	fresh := searchDetailed(t, q, img, nil)
	if len(fresh.Findings) == 0 {
		t.Fatal("scenario produced no findings to compare")
	}

	blob, err := a.SaveImage(img)
	if err != nil {
		t.Fatal(err)
	}

	_, queryBytes, _ := buildScenario(t)
	b := firmup.NewAnalyzer(nil)
	loadedImg, err := b.LoadImage(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(loadedImg.Exes) != len(img.Exes) {
		t.Fatalf("loaded %d executables, want %d", len(loadedImg.Exes), len(img.Exes))
	}
	for i, e := range loadedImg.Exes {
		if e.Path != img.Exes[i].Path {
			t.Fatalf("executable %d path %q, want %q", i, e.Path, img.Exes[i].Path)
		}
	}
	bq, err := b.LoadQueryExecutable(queryBytes)
	if err != nil {
		t.Fatal(err)
	}
	loaded := searchDetailed(t, bq, loadedImg, nil)
	if !reflect.DeepEqual(loaded.Findings, fresh.Findings) {
		t.Errorf("snapshot-loaded findings diverge:\nloaded: %+v\nfresh:  %+v", loaded.Findings, fresh.Findings)
	}
	if !reflect.DeepEqual(loaded.StepsHistogram, fresh.StepsHistogram) {
		t.Errorf("snapshot-loaded histograms diverge: %v vs %v", loaded.StepsHistogram, fresh.StepsHistogram)
	}
	loadedExh := searchDetailed(t, bq, loadedImg, &firmup.Options{Exhaustive: true})
	if !reflect.DeepEqual(loaded.Findings, loadedExh.Findings) {
		t.Errorf("loaded index unsound:\nindexed:    %+v\nexhaustive: %+v", loaded.Findings, loadedExh.Findings)
	}
	if len(loadedImg.Exes) > 1 && loaded.Examined >= len(loadedImg.Exes) {
		t.Errorf("loaded index examined %d of %d executables, want strictly fewer",
			loaded.Examined, len(loadedImg.Exes))
	}
}

// An unreadable snapshot must not take the image down with it:
// OpenImageWithSnapshot falls back to full analysis, surfaces the
// snapshot failure as a SkipReason, and the search still works.
func TestOpenImageWithSnapshotFallback(t *testing.T) {
	imgBytes, queryBytes, _ := buildScenario(t)
	a := firmup.NewAnalyzer(nil)
	good, err := a.OpenImage(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := a.SaveImage(good)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x10 // payload bit flip: CRC must catch it

	b := firmup.NewAnalyzer(nil)
	img, err := b.OpenImageWithSnapshot(imgBytes, blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Skipped) == 0 || img.Skipped[0].Path != firmup.SnapshotSkipPath {
		t.Fatalf("snapshot failure not surfaced in Skipped: %+v", img.Skipped)
	}
	if !errors.Is(img.Skipped[0].Err, firmup.ErrSnapshotCorrupt) {
		t.Errorf("skip reason %v does not wrap ErrSnapshotCorrupt", img.Skipped[0].Err)
	}
	q, err := b.LoadQueryExecutable(queryBytes)
	if err != nil {
		t.Fatal(err)
	}
	res := searchDetailed(t, q, img, nil)
	if len(res.Findings) == 0 {
		t.Error("fallback analysis produced no findings")
	}
}

// A clean snapshot short-circuits analysis entirely: no skip diagnostics
// and identical results.
func TestOpenImageWithSnapshotPreferred(t *testing.T) {
	imgBytes, queryBytes, _ := buildScenario(t)
	a := firmup.NewAnalyzer(nil)
	good, err := a.OpenImage(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := a.SaveImage(good)
	if err != nil {
		t.Fatal(err)
	}
	b := firmup.NewAnalyzer(nil)
	img, err := b.OpenImageWithSnapshot(imgBytes, blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range img.Skipped {
		if s.Path == firmup.SnapshotSkipPath {
			t.Fatalf("clean snapshot reported as failed: %v", s.Err)
		}
	}
	q, err := b.LoadQueryExecutable(queryBytes)
	if err != nil {
		t.Fatal(err)
	}
	if res := searchDetailed(t, q, img, nil); len(res.Findings) == 0 {
		t.Error("snapshot-served image produced no findings")
	}
}
