package firmup_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"firmup"
	"firmup/internal/corpus"
	"firmup/internal/uir"
)

// meaningfulProcs lists up to max procedure names of a query executable
// with enough strands to play a non-vacuous game.
func meaningfulProcs(q *firmup.Executable, max int) []string {
	var out []string
	for _, p := range q.Procedures() {
		if p.Strands >= 3 {
			out = append(out, p.Name)
			if len(out) == max {
				break
			}
		}
	}
	return out
}

// batchPool builds the paired live/sealed batch query pools: the same
// procedures, one side analyzed under the live session, the other under
// the sealed corpus's per-request overlay interner.
func batchPool(t *testing.T, s *sealedScenario) (live, sealed []firmup.BatchQuery) {
	t.Helper()
	sources := []struct {
		cveID string
		arch  uir.Arch
		procs int
	}{
		{"CVE-2014-4877", uir.ArchMIPS32, 6},
		{"CVE-2013-1944", uir.ArchARM32, 4},
	}
	for _, src := range sources {
		cve := corpus.CVEByID(src.cveID)
		if cve == nil {
			t.Fatalf("unknown CVE %s", src.cveID)
		}
		qb := queryBytesFor(t, cve, src.arch)
		liveQ, err := s.analyzer.LoadQueryExecutable(qb)
		if err != nil {
			t.Fatal(err)
		}
		sealedQ, err := s.sealed.AnalyzeQuery(qb)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range meaningfulProcs(liveQ, src.procs) {
			live = append(live, firmup.BatchQuery{Query: liveQ, Procedure: name})
			sealed = append(sealed, firmup.BatchQuery{Query: sealedQ, Procedure: name})
		}
	}
	if len(live) < 4 {
		t.Fatalf("only %d batch queries; scenario is vacuous", len(live))
	}
	return live, sealed
}

// TestSearchBatchEquivalenceOnCorpus is the batched analogue of the
// sealed/memoization equivalence suites: over a realistic corpus, every
// batch size 1..N and shuffled query order must produce results
// deep-equal — findings, examined counts and step histograms — to
// sequential per-query SearchImageDetailed, on both the live Analyzer
// path and the sealed SearchView path.
func TestSearchBatchEquivalenceOnCorpus(t *testing.T) {
	s := buildSealedScenario(t, corpus.Scale{DevicesPerVendor: 2, MaxReleases: 2, Seed: 7})
	livePool, sealedPool := batchPool(t, s)
	images := s.live
	if len(images) > 3 {
		images = images[:3]
	}
	opt := &firmup.Options{MinScore: 3, MinRatio: 0.2}

	// Sequential reference, computed once per (query, image).
	expected := make([][]*firmup.SearchResult, len(livePool))
	total := 0
	for qx, bq := range livePool {
		expected[qx] = make([]*firmup.SearchResult, len(images))
		for ii, img := range images {
			res, err := s.analyzer.SearchImageDetailed(bq.Query, bq.Procedure, img, opt)
			if err != nil {
				t.Fatal(err)
			}
			expected[qx][ii] = res
			total += len(res.Findings)
		}
	}
	if total == 0 {
		t.Fatal("sequential reference found nothing; equivalence is vacuous")
	}

	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= len(livePool); n++ {
		perm := rng.Perm(len(livePool))[:n]
		liveSel := make([]firmup.BatchQuery, n)
		sealedSel := make([]firmup.BatchQuery, n)
		for i, p := range perm {
			liveSel[i] = livePool[p]
			sealedSel[i] = sealedPool[p]
		}
		for ii, img := range images {
			liveRes, err := s.analyzer.SearchBatch(liveSel, img, opt)
			if err != nil {
				t.Fatal(err)
			}
			sealedRes, err := s.sealed.SearchBatch(sealedSel, s.sealed.Images()[ii], opt)
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range perm {
				if !reflect.DeepEqual(liveRes[i], expected[p][ii]) {
					t.Errorf("size %d image %d: live batched result for %q diverges from sequential:\nbatch: %+v\nseq:   %+v",
						n, ii, liveSel[i].Procedure, liveRes[i], expected[p][ii])
				}
				if !reflect.DeepEqual(sealedRes[i], expected[p][ii]) {
					t.Errorf("size %d image %d: sealed batched result for %q diverges from sequential:\nbatch: %+v\nseq:   %+v",
						n, ii, sealedSel[i].Procedure, sealedRes[i], expected[p][ii])
				}
			}
		}
	}
}

// TestSearchAllBatchMatchesSearchAll pins the corpus-wide batched entry
// point the serve coalescer uses: per query, SearchAllBatch must be
// deep-equal to a sequential SearchAll.
func TestSearchAllBatchMatchesSearchAll(t *testing.T) {
	s := buildSealedScenario(t, corpus.Scale{DevicesPerVendor: 2, MaxReleases: 2, Seed: 3})
	_, sealedPool := batchPool(t, s)
	res, err := s.sealed.SearchAllBatch(sealedPool, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for qx, bq := range sealedPool {
		solo, err := s.sealed.SearchAll(bq.Query, bq.Procedure, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res[qx], solo) {
			t.Errorf("query %d (%q): SearchAllBatch diverges from SearchAll:\nbatch: %+v\nseq:   %+v",
				qx, bq.Procedure, res[qx], solo)
		}
		for _, im := range solo {
			total += len(im.Findings)
		}
	}
	if total == 0 {
		t.Fatal("SearchAll found nothing; equivalence is vacuous")
	}
}

// TestSearchBatchConcurrentSealed hammers one sealed corpus with many
// goroutines issuing overlapping, shuffled batches under the race
// detector. After every batch returns, the goroutine clobbers the
// returned results in place — if any per-query state (findings slices,
// histogram maps, similarity buffers) were aliased across queries or
// batches, a later comparison or the race detector would catch it — and
// then replays a control query, which must still answer exactly the
// precomputed reference.
func TestSearchBatchConcurrentSealed(t *testing.T) {
	s := buildSealedScenario(t, corpus.Scale{DevicesPerVendor: 2, MaxReleases: 2, Seed: 5})
	_, pool := batchPool(t, s)
	img := s.sealed.Images()[0]

	// Reference results per query, and the control query's reference.
	expected := make([]*firmup.SearchResult, len(pool))
	for qx, bq := range pool {
		res, err := s.sealed.SearchImageDetailed(bq.Query, bq.Procedure, img, nil)
		if err != nil {
			t.Fatal(err)
		}
		expected[qx] = res
	}
	control := pool[0]
	controlWant := expected[0]

	const goroutines = 6
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for r := 0; r < rounds; r++ {
				n := 1 + rng.Intn(len(pool))
				perm := rng.Perm(len(pool))[:n]
				sel := make([]firmup.BatchQuery, n)
				for i, p := range perm {
					sel[i] = pool[p]
				}
				res, err := s.sealed.SearchBatch(sel, img, nil)
				if err != nil {
					errs <- err
					return
				}
				for i, p := range perm {
					if !reflect.DeepEqual(res[i], expected[p]) {
						errs <- fmt.Errorf("goroutine %d round %d: query %q diverges under concurrency", g, r, sel[i].Procedure)
						return
					}
				}
				// Clobber everything the batch returned: any aliasing into
				// engine or cross-query state turns this into a data race
				// or a later mismatch.
				for _, sr := range res {
					for fi := range sr.Findings {
						sr.Findings[fi].ExePath = "CLOBBERED"
						sr.Findings[fi].Score = -1
					}
					sr.StepsHistogram[-7] = 99
					sr.Findings = append(sr.Findings, firmup.Finding{ExePath: "junk"})
					sr.Examined = -1
				}
				got, err := s.sealed.SearchImageDetailed(control.Query, control.Procedure, img, nil)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, controlWant) {
					errs <- fmt.Errorf("goroutine %d round %d: control query corrupted after clobbering batch results", g, r)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
