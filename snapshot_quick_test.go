package firmup

// Property tests for the persistence layer over arbitrary generated
// corpora: Load(Save(img)) must re-attach to any session — fresh or
// already populated — such that SearchImage returns byte-identical
// Findings and StepsHistogram to the session that analyzed the corpus,
// with the corpus-index prefilter still sound. This extends the PR 1
// index-equivalence property (TestSearchImageIndexEquivalence) through
// the snapshot codec.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"firmup/internal/corpusindex"
	"firmup/internal/sim"
	"firmup/internal/snapshot"
	"firmup/internal/strand"
)

// synthProc is one generated procedure: a name, a strand-hash multiset
// and confirmation markers.
type synthProc struct {
	name    string
	hashes  []uint64
	markers []uint32
}

// synthCorpus is one generated scenario: a query procedure and the
// image's executables (each a list of procedures).
type synthCorpus struct {
	query   synthProc
	exes    [][]synthProc
	skipped []SkipReason
}

// genCorpus draws a scenario: a vocabulary pool, a query of 12–40
// strands, and 3–7 executables whose procedures sample the pool —
// including, with high probability, near-clones of the query so the
// search has real findings to preserve.
func genCorpus(rng *rand.Rand) synthCorpus {
	pool := make([]uint64, 80+rng.Intn(120))
	for i := range pool {
		// High bit set: keeps the corpus vocabulary disjoint from the
		// junk hashes cross-session tests pre-intern.
		pool[i] = rng.Uint64() | 1<<63
	}
	pick := func(n int) []uint64 {
		out := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, pool[rng.Intn(len(pool))])
		}
		return out
	}
	q := synthProc{name: "vuln", hashes: pick(12 + rng.Intn(28))}
	for i := rng.Intn(3); i > 0; i-- {
		q.markers = append(q.markers, rng.Uint32())
	}
	c := synthCorpus{query: q}
	nexes := 3 + rng.Intn(5)
	for ei := 0; ei < nexes; ei++ {
		var procs []synthProc
		nprocs := 2 + rng.Intn(5)
		for pi := 0; pi < nprocs; pi++ {
			p := synthProc{name: fmt.Sprintf("p%d_%d", ei, pi), hashes: pick(rng.Intn(30))}
			if rng.Intn(3) == 0 {
				// A true occurrence: the query's strands (and markers),
				// plus some noise.
				p.hashes = append(append([]uint64(nil), q.hashes...), pick(rng.Intn(10))...)
				p.markers = append([]uint32(nil), q.markers...)
			}
			procs = append(procs, p)
		}
		c.exes = append(c.exes, procs)
	}
	if rng.Intn(2) == 0 {
		c.skipped = append(c.skipped, SkipReason{Path: "bin/broken", Err: fmt.Errorf("synthetic skip")})
	}
	return c
}

// buildSet sorts and dedupes hashes into a session-less strand set.
func buildSet(hashes []uint64) strand.Set {
	seen := map[uint64]bool{}
	var out []uint64
	for _, h := range hashes {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return strand.Set{Hashes: out}
}

func buildProcs(specs []synthProc) []*sim.Proc {
	procs := make([]*sim.Proc, len(specs))
	for i, sp := range specs {
		procs[i] = &sim.Proc{
			Name:       sp.name,
			Addr:       uint32(0x1000 * (i + 1)),
			Set:        buildSet(sp.hashes),
			Markers:    append([]uint32(nil), sp.markers...),
			BlockCount: 1 + len(sp.hashes)/4,
			InstCount:  1 + len(sp.hashes),
		}
	}
	return procs
}

// buildSynthImage assembles the corpus as an analyzed Image under the
// session, mirroring what OpenImage produces (indexed, in order).
func buildSynthImage(a *Analyzer, c synthCorpus) *Image {
	img := &Image{Vendor: "synth", Device: "dev", Version: "1.0", Skipped: c.skipped}
	img.index = corpusindex.NewIndex(a.interner)
	for ei, procs := range c.exes {
		e := sim.FromProcsSession(fmt.Sprintf("bin/exe_%d", ei), buildProcs(procs), a.interner)
		img.Exes = append(img.Exes, &Executable{Path: e.Path, exe: e})
		img.index.Add(e)
	}
	return img
}

// buildSynthQuery builds the query executable under the session.
func buildSynthQuery(a *Analyzer, c synthCorpus) *Executable {
	e := sim.FromProcsSession("query", buildProcs([]synthProc{c.query}), a.interner)
	return &Executable{Path: "query", exe: e}
}

// searchBoth runs the query through the indexed and the exhaustive
// path.
func searchBoth(t *testing.T, q *Executable, img *Image) (indexed, exhaustive *SearchResult) {
	t.Helper()
	var err error
	indexed, err = SearchImageDetailed(q, "vuln", img, nil)
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err = SearchImageDetailed(q, "vuln", img, &Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	return indexed, exhaustive
}

// TestQuickSnapshotRoundTripSearchEquivalence is the persistence-layer
// property: for arbitrary corpora, a snapshot-loaded session — fresh or
// pre-populated with a different ID space — answers SearchImage with
// byte-identical Findings and StepsHistogram to the analyzing session,
// and its prefilter stays sound (indexed == exhaustive).
func TestQuickSnapshotRoundTripSearchEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := genCorpus(rng)

		// Reference: the session that "analyzed" the corpus.
		a := NewAnalyzer(nil)
		imgA := buildSynthImage(a, c)
		qA := buildSynthQuery(a, c)
		refIdx, refExh := searchBoth(t, qA, imgA)

		blob, err := a.SaveImage(imgA)
		if err != nil {
			t.Logf("seed %d: save: %v", seed, err)
			return false
		}

		check := func(label string, b *Analyzer) bool {
			imgB, err := b.LoadImage(blob)
			if err != nil {
				t.Logf("seed %d: %s: load: %v", seed, label, err)
				return false
			}
			qB := buildSynthQuery(b, c)
			gotIdx, gotExh := searchBoth(t, qB, imgB)
			for _, cmp := range []struct {
				name      string
				got, want *SearchResult
			}{
				{"indexed vs reference", gotIdx, refIdx},
				{"exhaustive vs reference", gotExh, refExh},
				{"indexed vs exhaustive (soundness)", gotIdx, gotExh},
			} {
				if !reflect.DeepEqual(cmp.got.Findings, cmp.want.Findings) {
					t.Logf("seed %d: %s: %s findings diverge:\ngot:  %+v\nwant: %+v",
						seed, label, cmp.name, cmp.got.Findings, cmp.want.Findings)
					return false
				}
				if !reflect.DeepEqual(cmp.got.StepsHistogram, cmp.want.StepsHistogram) {
					t.Logf("seed %d: %s: %s histograms diverge: %v vs %v",
						seed, label, cmp.name, cmp.got.StepsHistogram, cmp.want.StepsHistogram)
					return false
				}
			}
			if gotIdx.Examined > gotExh.Examined {
				t.Logf("seed %d: %s: index examined %d > exhaustive %d",
					seed, label, gotIdx.Examined, gotExh.Examined)
				return false
			}
			if len(imgB.Skipped) != len(imgA.Skipped) {
				t.Logf("seed %d: %s: skip diagnostics lost: %d vs %d",
					seed, label, len(imgB.Skipped), len(imgA.Skipped))
				return false
			}
			return true
		}

		// Fresh session: the saved ID space re-interns to itself.
		if !check("fresh session", NewAnalyzer(nil)) {
			return false
		}
		// Populated session: junk vocabulary first, so every saved ID
		// must be remapped.
		polluted := NewAnalyzer(nil)
		for i := 0; i < 200; i++ {
			polluted.interner.Intern(uint64(i + 1)) // high bit clear: disjoint from the corpus pool
		}
		return check("polluted session", polluted)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotCrossSessionReintern pins the satellite requirement down:
// save under session A, load under session B that has already interned
// other corpora; the dense IDs must be remapped — not collided — and
// the MaxSim prefilter must still never drop an accepted finding.
func TestSnapshotCrossSessionReintern(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var c synthCorpus
	for {
		c = genCorpus(rng)
		hasClone := false
		for _, procs := range c.exes {
			for _, p := range procs {
				if len(p.hashes) > len(c.query.hashes) {
					hasClone = true
				}
			}
		}
		if hasClone {
			break
		}
	}
	a := NewAnalyzer(nil)
	imgA := buildSynthImage(a, c)
	qA := buildSynthQuery(a, c)
	blob, err := a.SaveImage(imgA)
	if err != nil {
		t.Fatal(err)
	}
	refIdx, _ := searchBoth(t, qA, imgA)
	if len(refIdx.Findings) == 0 {
		t.Fatal("scenario produced no findings; the soundness check would be vacuous")
	}

	const junk = 300
	b := NewAnalyzer(nil)
	for i := 0; i < junk; i++ {
		b.interner.Intern(uint64(i + 1)) // disjoint from the corpus vocabulary (high bit clear)
	}
	imgB, err := b.LoadImage(blob)
	if err != nil {
		t.Fatal(err)
	}

	m, err := snapshot.Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	for ei, e := range imgB.Exes {
		for pi, p := range e.exe.Procs {
			if p.Set.It != strand.Interner(b.interner) {
				t.Fatalf("exe %d proc %d not attached to the loading session", ei, pi)
			}
			saved := m.Exes[ei].Procs[pi].IDs
			if len(saved) != len(p.Set.IDs) {
				t.Fatalf("exe %d proc %d: ID count changed: %d vs %d", ei, pi, len(saved), len(p.Set.IDs))
			}
			// Remapped: every loaded ID lands beyond B's pre-existing
			// vocabulary — none may collide with the junk IDs.
			for _, id := range p.Set.IDs {
				if id < junk {
					t.Fatalf("exe %d proc %d: loaded ID %d collides with session B's existing vocabulary", ei, pi, id)
				}
			}
			// Consistent: the IDs are exactly B's interning of the
			// hashes, so the per-exe CSR index and the corpus index
			// agree with the sets.
			want := make([]uint32, len(p.Set.Hashes))
			for k, h := range p.Set.Hashes {
				want[k] = b.interner.Intern(h)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !reflect.DeepEqual(want, p.Set.IDs) {
				t.Fatalf("exe %d proc %d: IDs are not the loading session's interning of the hashes", ei, pi)
			}
		}
	}

	qB := buildSynthQuery(b, c)
	gotIdx, gotExh := searchBoth(t, qB, imgB)
	if !reflect.DeepEqual(gotIdx.Findings, gotExh.Findings) {
		t.Errorf("prefilter dropped findings after re-intern:\nindexed:    %+v\nexhaustive: %+v",
			gotIdx.Findings, gotExh.Findings)
	}
	if !reflect.DeepEqual(gotIdx.Findings, refIdx.Findings) {
		t.Errorf("cross-session findings diverge from the analyzing session:\ngot:  %+v\nwant: %+v",
			gotIdx.Findings, refIdx.Findings)
	}
	if !reflect.DeepEqual(gotIdx.StepsHistogram, refIdx.StepsHistogram) {
		t.Errorf("cross-session histograms diverge: %v vs %v", gotIdx.StepsHistogram, refIdx.StepsHistogram)
	}
}
