package firmup_test

import (
	"reflect"
	"testing"

	"firmup"
	"firmup/internal/image"
)

// openScenario opens the wget image and loads the query under one
// analyzer session.
func openScenario(t *testing.T, aopt *firmup.AnalyzerOptions) (*firmup.Analyzer, *firmup.Image, *firmup.Executable) {
	t.Helper()
	imgBytes, queryBytes, _ := buildScenario(t)
	a := firmup.NewAnalyzer(aopt)
	img, err := a.OpenImage(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	q, err := a.LoadQueryExecutable(queryBytes)
	if err != nil {
		t.Fatal(err)
	}
	return a, img, q
}

// The corpus-index prefilter must never change what a search returns —
// only how many targets it examines.
func TestSearchImageIndexEquivalence(t *testing.T) {
	_, img, q := openScenario(t, nil)
	indexed, err := firmup.SearchImageDetailed(q, "ftp_retrieve_glob", img, nil)
	if err != nil {
		t.Fatal(err)
	}
	exhaustive, err := firmup.SearchImageDetailed(q, "ftp_retrieve_glob", img, &firmup.Options{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(indexed.Findings, exhaustive.Findings) {
		t.Errorf("findings diverge:\nindexed:    %+v\nexhaustive: %+v", indexed.Findings, exhaustive.Findings)
	}
	if !reflect.DeepEqual(indexed.StepsHistogram, exhaustive.StepsHistogram) {
		t.Errorf("histograms diverge: %v vs %v", indexed.StepsHistogram, exhaustive.StepsHistogram)
	}
	if exhaustive.Examined != len(img.Exes) {
		t.Errorf("exhaustive examined %d of %d executables", exhaustive.Examined, len(img.Exes))
	}
	if len(img.Exes) > 1 && indexed.Examined >= len(img.Exes) {
		t.Errorf("index examined %d of %d executables, want strictly fewer", indexed.Examined, len(img.Exes))
	}
	if len(indexed.Findings) == 0 {
		t.Error("scenario produced no findings to compare")
	}
}

// A query from a foreign session cannot use the image's index; the
// search must fall back to exhaustive examination and still agree.
func TestSearchImageCrossSessionFallback(t *testing.T) {
	_, img, q := openScenario(t, nil)
	imgBytes, queryBytes, _ := buildScenario(t)
	_ = imgBytes
	foreign := firmup.NewAnalyzer(nil)
	fq, err := foreign.LoadQueryExecutable(queryBytes)
	if err != nil {
		t.Fatal(err)
	}
	same, err := firmup.SearchImageDetailed(q, "ftp_retrieve_glob", img, nil)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := firmup.SearchImageDetailed(fq, "ftp_retrieve_glob", img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cross.Examined != len(img.Exes) {
		t.Errorf("cross-session search examined %d, want all %d", cross.Examined, len(img.Exes))
	}
	if !reflect.DeepEqual(same.Findings, cross.Findings) {
		t.Errorf("cross-session findings diverge:\nsame:  %+v\ncross: %+v", same.Findings, cross.Findings)
	}
}

// corruptImage appends an executable with an unknown arch byte: it
// parses as an FWELF but analysis must fail and surface in Skipped.
func corruptImage(t *testing.T, imgBytes []byte) []byte {
	t.Helper()
	im, err := image.Unpack(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	var exeData []byte
	for _, fe := range im.Files {
		if pe := im.Executables(); len(pe) > 0 && fe.Path == pe[0].Path {
			exeData = append([]byte(nil), fe.Data...)
			break
		}
	}
	if exeData == nil {
		t.Fatal("image has no executable to corrupt")
	}
	exeData[6] = 0xC8 // arch byte: no such backend
	im.Files = append(im.Files, image.FileEntry{Path: "bin/corrupt", Data: exeData})
	return im.Pack(true)
}

func TestOpenImageSurfacesSkipped(t *testing.T) {
	imgBytes, _, _ := buildScenario(t)
	a := firmup.NewAnalyzer(nil)
	img, err := a.OpenImage(corruptImage(t, imgBytes))
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Skipped) != 1 {
		t.Fatalf("Skipped = %+v, want exactly the corrupted entry", img.Skipped)
	}
	s := img.Skipped[0]
	if s.Path != "bin/corrupt" || s.Err == nil {
		t.Errorf("skip reason = %+v", s)
	}
	for _, e := range img.Exes {
		if e.Path == "bin/corrupt" {
			t.Error("corrupted executable must not be searchable")
		}
	}
}

// Parallel analysis must not change what an image looks like: executable
// order, skip order and procedure listings are worker-count independent.
func TestOpenImageParallelDeterminism(t *testing.T) {
	imgBytes, _, _ := buildScenario(t)
	data := corruptImage(t, imgBytes)
	shape := func(workers int) ([]string, []string) {
		a := firmup.NewAnalyzer(&firmup.AnalyzerOptions{Workers: workers})
		img, err := a.OpenImage(data)
		if err != nil {
			t.Fatal(err)
		}
		var exes, skipped []string
		for _, e := range img.Exes {
			exes = append(exes, e.Path)
		}
		for _, s := range img.Skipped {
			skipped = append(skipped, s.Path)
		}
		return exes, skipped
	}
	exes1, skip1 := shape(1)
	exes8, skip8 := shape(8)
	if !reflect.DeepEqual(exes1, exes8) {
		t.Errorf("executable order depends on workers: %v vs %v", exes1, exes8)
	}
	if !reflect.DeepEqual(skip1, skip8) {
		t.Errorf("skip order depends on workers: %v vs %v", skip1, skip8)
	}
}

func TestAnalyzerSessionStats(t *testing.T) {
	a, img, _ := openScenario(t, nil)
	if a.UniqueStrands() == 0 {
		t.Error("session interned no strands")
	}
	if img.IndexedStrands() == 0 {
		t.Error("image carries no index postings")
	}
	noIdx := firmup.NewAnalyzer(&firmup.AnalyzerOptions{DisableIndex: true})
	imgBytes, _, _ := buildScenario(t)
	img2, err := noIdx.OpenImage(imgBytes)
	if err != nil {
		t.Fatal(err)
	}
	if img2.IndexedStrands() != 0 {
		t.Error("DisableIndex image must carry no postings")
	}
}
