package firmup

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"unsafe"

	"firmup/internal/core"
	"firmup/internal/corpusindex"
	"firmup/internal/sim"
	"firmup/internal/snapshot"
	"firmup/internal/strand"
	"firmup/internal/telemetry"
	"firmup/internal/uir"
)

// The shard slab layout and the in-session signature layout must agree
// on the per-procedure word count; both arrays have length zero only
// when they do.
var (
	_ [snapshot.CorpusSigWords - strand.SigWords]struct{}
	_ [strand.SigWords - snapshot.CorpusSigWords]struct{}
)

// This file is the store-backed (v2, mmap) side of SealedCorpus: a
// corpus opened from sharded FWCORP v2 artifacts keeps its bulk state
// in the mapped files and materializes per-executable session objects
// lazily, on first search touch. The prefilter makes that pay off: a
// query's candidate set is computed from the shard's CSR slabs before
// any executable exists in RAM, so only candidates are ever
// materialized, and peak RSS tracks the working set instead of the
// corpus.

// sealedStore binds one open shard to the corpus-wide frozen
// vocabulary. All images of the shard share it.
type sealedStore struct {
	shard  *snapshot.CorpusShard
	frozen *corpusindex.Frozen
}

// lazyExe is one executable's materialize-once slot.
type lazyExe struct {
	once sync.Once
	exe  *Executable
	err  error
}

// sealedShardRef is one shard of an open sharded corpus.
type sealedShardRef struct {
	store *sealedStore
	path  string
	base  int // global index of the shard's first image
	n     int // image count
}

// SealedShard describes one shard of an open sealed corpus, for health
// reporting (firmupd /corpus).
type SealedShard struct {
	Index       int    `json:"index"`
	Path        string `json:"path"`
	Images      int    `json:"images"`
	Executables int    `json:"executables"`
	SizeBytes   int64  `json:"size_bytes"`
	Mapped      bool   `json:"mapped"`
}

// Shards describes the open shards backing this corpus, in shard
// order; nil for an in-RAM (sealed-this-session or v1-loaded) corpus.
func (sc *SealedCorpus) Shards() []SealedShard {
	if len(sc.shards) == 0 {
		return nil
	}
	out := make([]SealedShard, len(sc.shards))
	for i, ref := range sc.shards {
		nexes := 0
		for _, im := range sc.images[ref.base : ref.base+ref.n] {
			nexes += im.nExes
		}
		out[i] = SealedShard{
			Index:       i,
			Path:        ref.path,
			Images:      ref.n,
			Executables: nexes,
			SizeBytes:   ref.store.shard.SizeBytes(),
			Mapped:      ref.store.shard.Mapped(),
		}
	}
	return out
}

// Close releases the mappings of a store-backed corpus. Searches must
// have drained first: materialized executables alias the mapped slabs.
// Close on an in-RAM corpus is a no-op.
func (sc *SealedCorpus) Close() error {
	var errs []error
	for _, ref := range sc.shards {
		if err := ref.store.shard.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// shardRanges returns the contiguous image ranges searched
// independently by the corpus-wide fan-out: one per shard, or the whole
// corpus as a single range when in-RAM.
func (sc *SealedCorpus) shardRanges() [][2]int {
	if len(sc.shards) == 0 {
		return [][2]int{{0, len(sc.images)}}
	}
	out := make([][2]int, len(sc.shards))
	for i, ref := range sc.shards {
		out[i] = [2]int{ref.base, ref.n}
	}
	return out
}

// materialize returns executable i of a store-backed image, building it
// from the mapped shard on first use. Safe for concurrent callers.
func (im *SealedImage) materialize(i int) (*Executable, error) {
	le := &im.lazy[i]
	le.once.Do(func() { le.exe, le.err = im.store.loadExe(im.storeImg, i) })
	return le.exe, le.err
}

// loadExe materializes one executable from the shard: strand IDs and
// markers alias the mapped slabs (they are immutable), hashes are
// recovered through the frozen vocabulary, and the result binds to the
// frozen interner exactly like a v1-loaded executable.
func (st *sealedStore) loadExe(storeImg, i int) (*Executable, error) {
	ed, err := st.shard.Exe(storeImg, i)
	if err != nil {
		return nil, err
	}
	vocab := st.frozen.Vocab()
	procs := make([]*sim.Proc, len(ed.Procs))
	for pi := range ed.Procs {
		pd := &ed.Procs[pi]
		hashes := make([]uint64, len(pd.IDs))
		for k, id := range pd.IDs {
			hashes[k] = vocab[id]
		}
		// Set invariant: Hashes sorted ascending (IDs already are).
		sort.Slice(hashes, func(a, b int) bool { return hashes[a] < hashes[b] })
		p := &sim.Proc{
			Name:       pd.Name,
			Addr:       pd.Addr,
			Exported:   pd.Exported,
			Set:        strand.Set{Hashes: hashes, IDs: pd.IDs, It: st.frozen},
			Markers:    pd.Markers,
			BlockCount: pd.BlockCount,
			EdgeCount:  pd.EdgeCount,
			InstCount:  pd.InstCount,
		}
		if len(pd.Calls) > 0 {
			p.Calls = make([]int, len(pd.Calls))
			for k, c := range pd.Calls {
				p.Calls[k] = int(c)
			}
		}
		procs[pi] = p
	}
	for pi, p := range procs {
		for _, cl := range p.Calls {
			procs[cl].CalledBy = append(procs[cl].CalledBy, pi)
		}
	}
	e := sim.FromProcsSession(ed.Path, procs, st.frozen)
	e.Arch = uir.Arch(ed.Arch)
	e.Stripped = ed.Stripped
	return &Executable{Path: ed.Path, exe: e}, nil
}

// ensureIndex builds a store-backed image's frozen index directly over
// the shard's CSR slabs, once. No-op for in-RAM images.
func (im *SealedImage) ensureIndex() error {
	if im.store == nil {
		return nil
	}
	im.idxOnce.Do(func() {
		slabs, err := im.store.shard.Index(im.storeImg)
		if err != nil {
			im.idxErr = err
			return
		}
		if slabs == nil {
			return // sealed without an index: exhaustive search
		}
		counts, err := im.store.shard.ProcCounts(im.storeImg)
		if err != nil {
			im.idxErr = err
			return
		}
		idx, err := corpusindex.NewFrozenIndexForeign(im.store.frozen, counts, slabs.RowIDs, slabs.RowEnds, postsToIndex(slabs.Posts))
		if err != nil {
			// Semantic index violations are shard corruption, reported
			// under the same contract as every other decode failure.
			im.idxErr = &snapshot.CorruptError{Section: "corpus-index-posts", Reason: err.Error()}
			return
		}
		// A v3 shard carries the per-procedure MinHash slab; attach the
		// image's zero-copy slice so the LSH tier runs straight off the
		// mapping. A v2 shard has none, and the index serves both probe
		// modes through the exact prefilter.
		if im.store.shard.HasSignatures() {
			sigs, err := im.store.shard.ImageSigs(im.storeImg)
			if err != nil {
				im.idxErr = err
				return
			}
			if err := idx.SetSignatures(sigs); err != nil {
				im.idxErr = &snapshot.CorruptError{Section: "corpus-sigs", Reason: err.Error()}
				return
			}
		}
		if im.tel != nil {
			idx.SetTelemetry(im.tel)
		}
		im.index = idx
	})
	return im.idxErr
}

// ensureAll materializes every executable of a store-backed image and
// publishes Exes/targets, once. No-op for in-RAM images.
func (im *SealedImage) ensureAll() error {
	if im.store == nil {
		return nil
	}
	im.allOnce.Do(func() {
		exes := make([]*Executable, im.nExes)
		targets := make([]*sim.Exe, im.nExes)
		for i := range exes {
			e, err := im.materialize(i)
			if err != nil {
				im.allErr = err
				return
			}
			exes[i] = e
			targets[i] = e.exe
		}
		im.Exes = exes
		im.targets = targets
	})
	return im.allErr
}

// postsToIndex views the shard's posting slab as corpusindex postings.
// Both types are (exe int32, proc int32); when their layouts agree the
// conversion is a cast, not a copy.
func postsToIndex(sp []snapshot.Posting) []corpusindex.Posting {
	if len(sp) == 0 {
		return nil
	}
	if unsafe.Sizeof(snapshot.Posting{}) == unsafe.Sizeof(corpusindex.Posting{}) &&
		unsafe.Offsetof(snapshot.Posting{}.Proc) == unsafe.Offsetof(corpusindex.Posting{}.Proc) {
		return unsafe.Slice((*corpusindex.Posting)(unsafe.Pointer(&sp[0])), len(sp))
	}
	out := make([]corpusindex.Posting, len(sp))
	for i, p := range sp {
		out[i] = corpusindex.Posting{Exe: p.Exe, Proc: p.Proc}
	}
	return out
}

// storeCandidates builds the single candidate function both the
// materialization pass and the game prefilter call. Using one closure
// for both keeps the sets identical by construction: a game can only
// probe target slots the materialization pass filled.
func storeCandidates(idx *corpusindex.FrozenIndex, minScore int, minRatio float64, approx bool) func(q *sim.Exe, qpi int, _ []*sim.Exe) ([]int, bool) {
	return func(q *sim.Exe, qpi int, _ []*sim.Exe) ([]int, bool) {
		return idx.CandidateIndicesLSH(q.Procs[qpi].Set, minScore, minRatio, approx, nil)
	}
}

// storeSearch runs one query procedure against a store-backed image:
// candidates come off the mapped CSR index first, and only candidate
// executables are materialized. Findings, examined counts and step
// histograms are byte-identical to the in-RAM path — core.Search with
// the index prefilter is exactly what core.SearchView runs, and
// non-candidate target slots are never dereferenced.
func (sc *SealedCorpus) storeSearch(query *Executable, qi int, img *SealedImage, opt *Options, parent telemetry.SpanID) (*SearchResult, error) {
	s := opt.search()
	s.TraceParent = parent
	if err := img.ensureIndex(); err != nil {
		return nil, err
	}
	exhaustive := opt != nil && opt.Exhaustive
	if idx := img.index; idx != nil && !exhaustive {
		cand := storeCandidates(idx, s.MinScore, s.MinRatio, opt != nil && opt.Approx)
		cands, ok := cand(query.exe, qi, nil)
		if ok {
			msp := s.Trace.Start("store.materialize", parent)
			msp.SetAttr("candidates", int64(len(cands)))
			targets := make([]*sim.Exe, img.nExes)
			for _, ti := range cands {
				e, err := img.materialize(ti)
				if err != nil {
					msp.End()
					return nil, err
				}
				targets[ti] = e.exe
			}
			msp.End()
			s.Prefilter = cand
			return searchResultFromCore(core.Search(query.exe, qi, targets, s)), nil
		}
	}
	// Unindexed, exhaustive, or the index reported no information:
	// every executable is examined, so materialize the image.
	if err := img.ensureAll(); err != nil {
		return nil, err
	}
	return searchResultFromCore(core.Search(query.exe, qi, img.targets, s)), nil
}

// storeSearchBatch is storeSearch for a batched pass: the union of all
// queries' candidate sets is materialized, then one shared-matcher
// core.SearchBatch runs over the nil-padded target slice.
func (sc *SealedCorpus) storeSearchBatch(cqs []core.BatchQuery, img *SealedImage, opt *Options, parent telemetry.SpanID) ([]*SearchResult, error) {
	s := opt.search()
	s.TraceParent = parent
	if err := img.ensureIndex(); err != nil {
		return nil, err
	}
	exhaustive := opt != nil && opt.Exhaustive
	if idx := img.index; idx != nil && !exhaustive {
		cand := storeCandidates(idx, s.MinScore, s.MinRatio, opt != nil && opt.Approx)
		need := make([]bool, img.nExes)
		narrow := true
		for _, cq := range cqs {
			cands, ok := cand(cq.Q, cq.QI, nil)
			if !ok {
				narrow = false
				break
			}
			for _, ti := range cands {
				need[ti] = true
			}
		}
		if narrow {
			nCand := 0
			for _, n := range need {
				if n {
					nCand++
				}
			}
			msp := s.Trace.Start("store.materialize", parent)
			msp.SetAttr("candidates", int64(nCand))
			targets := make([]*sim.Exe, img.nExes)
			for ti, n := range need {
				if !n {
					continue
				}
				e, err := img.materialize(ti)
				if err != nil {
					msp.End()
					return nil, err
				}
				targets[ti] = e.exe
			}
			msp.End()
			s.Prefilter = cand
			res := core.SearchBatch(cqs, targets, s)
			out := make([]*SearchResult, len(res))
			for i := range res {
				out[i] = searchResultFromCore(res[i])
			}
			return out, nil
		}
	}
	if err := img.ensureAll(); err != nil {
		return nil, err
	}
	res := core.SearchBatch(cqs, img.targets, s)
	out := make([]*SearchResult, len(res))
	for i := range res {
		out[i] = searchResultFromCore(res[i])
	}
	return out, nil
}

// WriteShards splits the sealed corpus into n contiguous image ranges
// and writes each as one FWCORP shard file (shard-NNNN.fwcorp) under
// dir, returning the paths in shard order. Every shard embeds the full
// frozen vocabulary plus its position, so OpenSealedCorpusDir can
// validate the set as one coherent corpus. n may exceed the image
// count; trailing shards are then empty but still valid.
//
// Shards carry the per-procedure MinHash signature slab (the v3
// layout), so corpora opened from them serve the LSH candidate tier
// without rederiving signatures. Shards are encoded and written by a
// bounded worker pool; each shard's bytes depend only on its own image
// range, so the output is identical to a sequential pass.
func (sc *SealedCorpus) WriteShards(dir string, n int) ([]string, error) {
	return sc.writeShards(dir, n, true)
}

// WriteShardsNoSigs is WriteShards without the corpus-sigs section —
// the pre-LSH v2 artifact layout, readable by older firmupd builds.
// Corpora opened from such shards fall back to the exact prefilter for
// both probe modes.
func (sc *SealedCorpus) WriteShardsNoSigs(dir string, n int) ([]string, error) {
	return sc.writeShards(dir, n, false)
}

func (sc *SealedCorpus) writeShards(dir string, n int, sigs bool) ([]string, error) {
	if n < 1 {
		return nil, fmt.Errorf("firmup: WriteShards: shard count %d must be at least 1", n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	total := len(sc.images)
	type shardRange struct{ base, cnt int }
	ranges := make([]shardRange, n)
	for si, base := 0, 0; si < n; si++ {
		cnt := total / n
		if si < total%n {
			cnt++
		}
		ranges[si] = shardRange{base, cnt}
		base += cnt
	}
	paths := make([]string, n)
	errs := make([]error, n)
	workers := min(n, runtime.GOMAXPROCS(0))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for si := range ranges {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			paths[si], errs[si] = sc.writeShard(dir, si, n, ranges[si].base, ranges[si].cnt, total, sigs)
		}(si)
	}
	wg.Wait()
	// First error in shard order wins, matching the sequential contract.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// writeShard encodes and writes one shard's image range.
func (sc *SealedCorpus) writeShard(dir string, si, n, base, cnt, total int, sigs bool) (string, error) {
	c := &snapshot.Corpus{Interner: sc.frozen.Vocab()}
	if sigs {
		// Non-nil even for an empty shard, so every shard of the set
		// encodes as the same container version.
		c.Sigs = []uint32{}
	}
	for i := base; i < base+cnt; i++ {
		ci, err := sc.imageModel(i)
		if err != nil {
			return "", err
		}
		c.Images = append(c.Images, ci)
		if sigs {
			c.Sigs = appendModelSigs(c.Sigs, &c.Images[len(c.Images)-1])
		}
	}
	data, err := snapshot.EncodeCorpusShard(c, snapshot.ShardHeader{
		ShardIndex:  si,
		ShardCount:  n,
		ImageBase:   base,
		TotalImages: total,
	})
	if err != nil {
		return "", err
	}
	p := filepath.Join(dir, fmt.Sprintf("shard-%04d.fwcorp", si))
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return "", err
	}
	return p, nil
}

// appendModelSigs appends every procedure's MinHash signature of one
// image model. Signatures are computed over the frozen dense IDs —
// exactly the IDs the live session's slab was computed over, since
// Freeze and Rebound preserve them — so a rewritten shard's slab is
// byte-identical to the sealing session's.
func appendModelSigs(sigs []uint32, ci *snapshot.CorpusImage) []uint32 {
	for _, e := range ci.Exes {
		for _, p := range e.Procs {
			n := len(sigs)
			sigs = append(sigs, make([]uint32, snapshot.CorpusSigWords)...)
			strand.MinHashInto(sigs[n:], p.IDs)
		}
	}
	return sigs
}

// imageModel serializes image i into the snapshot corpus model,
// materializing it first when store-backed.
func (sc *SealedCorpus) imageModel(i int) (snapshot.CorpusImage, error) {
	im := sc.images[i]
	if err := im.ensureAll(); err != nil {
		return snapshot.CorpusImage{}, err
	}
	if err := im.ensureIndex(); err != nil {
		return snapshot.CorpusImage{}, err
	}
	ci := snapshot.CorpusImage{Vendor: im.Vendor, Device: im.Device, Version: im.Version}
	for _, s := range im.Skipped {
		ci.Skipped = append(ci.Skipped, snapshot.Skip{Path: s.Path, Err: s.Err.Error()})
	}
	for _, e := range im.Exes {
		ci.Exes = append(ci.Exes, exeToModel(e.Path, e.exe))
	}
	if im.index != nil {
		rows := im.index.Rows()
		ci.Index = make([]snapshot.IndexRow, len(rows))
		for k, r := range rows {
			ci.Index[k] = snapshot.IndexRow{ID: r.ID, Posts: postsToModel(r.Posts)}
		}
	}
	return ci, nil
}

// OpenSealedCorpus opens a sealed corpus from any persisted form: a
// directory of v2 shards, a single v2 shard file (of a 1-shard
// corpus), or a v1 FWCORP artifact (fully decoded into RAM, as
// LoadSealedCorpus always has).
func OpenSealedCorpus(path string) (*SealedCorpus, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		return OpenSealedCorpusDir(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 12)
	n, _ := f.Read(hdr)
	f.Close()
	version, err := snapshot.CorpusVersion(hdr[:n])
	if err != nil {
		return nil, err
	}
	if version < snapshot.CorpusFormatVersionV2 {
		// v1 (and any unknown version, which DecodeCorpus rejects with
		// the proper diagnostic): the eager decode path.
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return LoadSealedCorpus(data)
	}
	shard, err := snapshot.OpenCorpusShardFile(path)
	if err != nil {
		return nil, err
	}
	if shard.Header().ShardCount != 1 {
		idx, cnt := shard.Header().ShardIndex, shard.Header().ShardCount
		shard.Close()
		return nil, fmt.Errorf("firmup: %s is shard %d of %d: open the shard directory instead", path, idx, cnt)
	}
	return sealedFromShards([]*snapshot.CorpusShard{shard}, []string{path})
}

// MixedCorpusError reports a shard directory that mixes sealed-corpus
// container generations: a monolithic v1 artifact cannot be served
// alongside mmap shard files as one corpus. Path names the offending
// file so the operator can move it out of the shard set.
type MixedCorpusError struct {
	// Dir is the directory that was scanned.
	Dir string
	// Path is the first file whose container generation disagrees with
	// the shard files around it.
	Path string
	// Version is that file's container format version.
	Version int
}

func (e *MixedCorpusError) Error() string {
	return fmt.Sprintf("firmup: %s mixes sealed-corpus container generations: %s is a v%d artifact among shard files", e.Dir, e.Path, e.Version)
}

// sniffCorpusVersion reads just the container header version of one
// .fwcorp file.
func sniffCorpusVersion(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	hdr := make([]byte, 16)
	n, _ := f.Read(hdr)
	f.Close()
	return snapshot.CorpusVersion(hdr[:n])
}

// OpenSealedCorpusDir opens every *.fwcorp shard under dir as one
// sealed corpus, validating that the files form exactly one complete
// shard set (contiguous indexes, agreeing totals, byte-identical
// frozen vocabulary). A directory mixing monolithic v1 artifacts with
// shard files fails with a *MixedCorpusError naming the odd file out.
func OpenSealedCorpusDir(dir string) (*SealedCorpus, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.fwcorp"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("firmup: %s holds no .fwcorp shards", dir)
	}
	sort.Strings(matches)
	versions := make([]int, len(matches))
	hasShard := false
	for i, p := range matches {
		v, err := sniffCorpusVersion(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		versions[i] = v
		if v >= snapshot.CorpusFormatVersionV2 {
			hasShard = true
		}
	}
	if hasShard {
		for i, v := range versions {
			if v < snapshot.CorpusFormatVersionV2 {
				return nil, &MixedCorpusError{Dir: dir, Path: matches[i], Version: v}
			}
		}
	}
	shards := make([]*snapshot.CorpusShard, 0, len(matches))
	closeAll := func() {
		for _, s := range shards {
			s.Close()
		}
	}
	for _, p := range matches {
		s, err := snapshot.OpenCorpusShardFile(p)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		shards = append(shards, s)
	}
	sc, err := sealedFromShards(shards, matches)
	if err != nil {
		closeAll()
		return nil, err
	}
	return sc, nil
}

// sealedFromShards assembles an open sealed corpus from already-open
// shards (with their paths aligned by index). On error the caller owns
// closing the shards.
func sealedFromShards(shards []*snapshot.CorpusShard, paths []string) (*SealedCorpus, error) {
	order := make([]int, len(shards))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return shards[order[a]].Header().ShardIndex < shards[order[b]].Header().ShardIndex
	})

	want := shards[order[0]].Header()
	if want.ShardCount != len(shards) {
		return nil, fmt.Errorf("firmup: corpus declares %d shards but %d shard files are present", want.ShardCount, len(shards))
	}
	crc0, len0 := shards[order[0]].VocabChecksum()
	base := 0
	for pos, oi := range order {
		h := shards[oi].Header()
		if h.ShardIndex != pos {
			return nil, fmt.Errorf("firmup: shard set is not contiguous: missing shard %d (found %d in %s)", pos, h.ShardIndex, paths[oi])
		}
		if h.ShardCount != want.ShardCount || h.TotalImages != want.TotalImages {
			return nil, fmt.Errorf("firmup: %s declares %d shards / %d images, shard 0 declares %d / %d: mixed corpora", paths[oi], h.ShardCount, h.TotalImages, want.ShardCount, want.TotalImages)
		}
		if crc, l := shards[oi].VocabChecksum(); crc != crc0 || l != len0 {
			return nil, fmt.Errorf("firmup: %s vocabulary differs from shard 0: shards of different corpora", paths[oi])
		}
		if h.ImageBase != base {
			return nil, fmt.Errorf("firmup: %s starts at image %d, previous shards end at %d", paths[oi], h.ImageBase, base)
		}
		base += shards[oi].NumImages()
	}
	if base != want.TotalImages {
		return nil, fmt.Errorf("firmup: shards hold %d images, corpus declares %d", base, want.TotalImages)
	}

	// The frozen vocabulary comes straight off shard 0's mapped slabs:
	// no map build, no clone. FrozenFromSlabs validates the sorted slab
	// against the vocabulary, which also CRC-touches both sections.
	vocab, err := shards[order[0]].Vocab()
	if err != nil {
		return nil, err
	}
	sortedH, sortedI, err := shards[order[0]].SortedVocab()
	if err != nil {
		return nil, err
	}
	frozen, err := corpusindex.FrozenFromSlabs(vocab, sortedH, sortedI)
	if err != nil {
		return nil, err
	}

	sc := &SealedCorpus{frozen: frozen}
	imgBase := 0
	for _, oi := range order {
		shard := shards[oi]
		store := &sealedStore{shard: shard, frozen: frozen}
		n := shard.NumImages()
		for li := 0; li < n; li++ {
			info := shard.Image(li)
			si := &SealedImage{
				Vendor:   info.Vendor,
				Device:   info.Device,
				Version:  info.Version,
				store:    store,
				storeImg: li,
				nExes:    info.Executables,
				lazy:     make([]lazyExe, info.Executables),
			}
			for _, s := range info.Skipped {
				si.Skipped = append(si.Skipped, SkipReason{Path: s.Path, Err: errors.New(s.Err)})
			}
			sc.images = append(sc.images, si)
		}
		sc.shards = append(sc.shards, &sealedShardRef{store: store, path: paths[oi], base: imgBase, n: n})
		imgBase += n
	}
	return sc, nil
}
