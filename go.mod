module firmup

go 1.22
